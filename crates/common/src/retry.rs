//! Deterministic bounded retry for transient I/O faults.
//!
//! The durable seams of the engine (buffer-pool page writes, WAL group
//! flush, master-record updates) wrap their physical operations in a
//! [`RetryPolicy`]. Only [`Error::IoTransient`] is absorbed — protocol
//! retryables (deadlock victims, lock timeouts) and permanent failures pass
//! straight through. Backoff is computed from a seeded [`Rng`], never from
//! wall-clock entropy, so torture sweeps that inject transient faults stay
//! bit-reproducible: the *schedule* of retries is a pure function of the
//! policy, even though the sleeps themselves take real time.

use crate::error::Result;
use crate::rng::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bounded-attempt retry with deterministic exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `max_attempts = 1` never
    /// retries). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds. `0` disables
    /// sleeping entirely (used by the torture harness, where injected faults
    /// clear by event count, not by time).
    pub base_delay_micros: u64,
    /// Upper bound on any single backoff sleep.
    pub max_delay_micros: u64,
    /// Seed for the jitter stream. Two policies with the same fields produce
    /// identical backoff sequences.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_micros: 50,
            max_delay_micros: 5_000,
            seed: 0xC0FF_EE00,
        }
    }
}

impl RetryPolicy {
    /// Policy that retries without sleeping — for deterministic harnesses
    /// where faults clear by event count rather than elapsed time.
    pub fn no_delay(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_micros: 0,
            max_delay_micros: 0,
            seed: 0,
        }
    }

    /// Backoff before attempt `attempt + 1`, where `attempt` counts failed
    /// attempts so far (first retry ⇒ `attempt = 1`). Exponential in the
    /// attempt number, capped, with deterministic jitter in `[50%, 100%]`
    /// of the capped value.
    pub fn delay_micros(&self, attempt: u32) -> u64 {
        if self.base_delay_micros == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(16);
        let raw = self.base_delay_micros.saturating_mul(1u64 << shift);
        let capped = raw.min(self.max_delay_micros).max(1);
        let mut rng = Rng::new(
            self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let half = (capped / 2).max(1);
        half + rng.below(half)
    }

    /// Run `op`, retrying transient I/O failures up to `max_attempts` total
    /// attempts. Retries and exhaustions are recorded in `counters`.
    pub fn run<T>(
        &self,
        counters: &RetryCounters,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient_io() && attempt < self.max_attempts => {
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                    let delay = self.delay_micros(attempt);
                    if delay > 0 {
                        counters.backoff_micros.fetch_add(delay, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_transient_io() {
                        counters.exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// Shared retry telemetry, updated lock-free from every durable seam that
/// uses a [`RetryPolicy`].
#[derive(Debug, Default)]
pub struct RetryCounters {
    /// Transient failures absorbed by a successful (or still-pending) retry.
    pub retries: AtomicU64,
    /// Operations that failed even after `max_attempts` attempts.
    pub exhausted: AtomicU64,
    /// Total backoff slept, in microseconds.
    pub backoff_micros: AtomicU64,
}

impl RetryCounters {
    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> RetryStatsSnapshot {
        RetryStatsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            backoff_micros: self.backoff_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`RetryCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStatsSnapshot {
    /// Transient failures absorbed by retry.
    pub retries: u64,
    /// Operations that exhausted every attempt.
    pub exhausted: u64,
    /// Total deterministic backoff slept, in microseconds.
    pub backoff_micros: u64,
}

impl RetryStatsSnapshot {
    /// Component-wise sum, for aggregating per-seam counters into one report.
    pub fn merge(&self, other: &RetryStatsSnapshot) -> RetryStatsSnapshot {
        RetryStatsSnapshot {
            retries: self.retries + other.retries,
            exhausted: self.exhausted + other.exhausted,
            backoff_micros: self.backoff_micros + other.backoff_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use std::sync::atomic::AtomicU32;

    fn transient() -> Error {
        Error::IoTransient(std::io::Error::other("injected"))
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..10 {
            let a = p.delay_micros(attempt);
            let b = p.delay_micros(attempt);
            assert_eq!(a, b, "same policy+attempt ⇒ same delay");
            assert!(a <= p.max_delay_micros);
            assert!(a >= 1);
        }
        // Exponential growth until the cap: attempt 2 jitters around twice
        // the base, so its floor (50% of capped) exceeds attempt 1's ceiling
        // only on average; just check the deterministic cap path.
        assert_eq!(p.delay_micros(60), p.delay_micros(60));
        assert!(p.delay_micros(60) <= p.max_delay_micros);
    }

    #[test]
    fn no_delay_policy_never_sleeps() {
        let p = RetryPolicy::no_delay(4);
        for attempt in 1..8 {
            assert_eq!(p.delay_micros(attempt), 0);
        }
    }

    #[test]
    fn absorbs_transient_failures_within_budget() {
        let p = RetryPolicy::no_delay(5);
        let c = RetryCounters::default();
        let calls = AtomicU32::new(0);
        let out = p.run(&c, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 3 {
                return Err(transient());
            }
            Ok(42)
        });
        assert_eq!(out.unwrap(), 42);
        let snap = c.snapshot();
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let p = RetryPolicy::no_delay(3);
        let c = RetryCounters::default();
        let calls = AtomicU32::new(0);
        let out: Result<()> = p.run(&c, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(transient())
        });
        assert!(matches!(out, Err(Error::IoTransient(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "exactly max_attempts calls");
        let snap = c.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.exhausted, 1);
    }

    #[test]
    fn permanent_errors_pass_straight_through() {
        let p = RetryPolicy::no_delay(5);
        let c = RetryCounters::default();
        let calls = AtomicU32::new(0);
        let out: Result<()> = p.run(&c, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::Io(std::io::Error::other("dead device")))
        });
        assert!(matches!(out, Err(Error::Io(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry on permanent error");
        assert_eq!(c.snapshot(), RetryStatsSnapshot::default());
    }

    #[test]
    fn protocol_retryables_are_not_absorbed() {
        let p = RetryPolicy::no_delay(5);
        let c = RetryCounters::default();
        let calls = AtomicU32::new(0);
        let out: Result<()> = p.run(&c, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::SerializationConflict("w-w".into()))
        });
        assert!(matches!(out, Err(Error::SerializationConflict(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_merge_sums_fields() {
        let a = RetryStatsSnapshot { retries: 1, exhausted: 2, backoff_micros: 3 };
        let b = RetryStatsSnapshot { retries: 10, exhausted: 20, backoff_micros: 30 };
        assert_eq!(
            a.merge(&b),
            RetryStatsSnapshot { retries: 11, exhausted: 22, backoff_micros: 33 }
        );
    }
}
