//! Dynamic cell values.
//!
//! The engine's row model is dynamically typed at the storage layer (like a
//! record in a page) and statically checked against a [`crate::schema`] at
//! the catalog layer. [`Value`] supports the types the reproduced paper's
//! workloads need: 64-bit integers (keys, counts, SUM accumulators), 64-bit
//! floats, UTF-8 strings, and NULL.

use crate::codec::{Reader, Writer};
use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Column type tags used by schemas and by the codec.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl ValueType {
    /// Single-byte tag for the codec.
    fn tag(self) -> u8 {
        match self {
            ValueType::Int => 1,
            ValueType::Float => 2,
            ValueType::Str => 3,
        }
    }

    fn from_tag(t: u8) -> Result<ValueType> {
        match t {
            1 => Ok(ValueType::Int),
            2 => Ok(ValueType::Float),
            3 => Ok(ValueType::Str),
            _ => Err(Error::corruption(format!("bad value-type tag {t}"))),
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Str => write!(f, "STR"),
        }
    }
}

/// A single dynamically-typed cell.
///
/// `PartialEq`/`Eq`/`Hash` use *bitwise* float semantics (`f64::to_bits`):
/// `Float(0.0) != Float(-0.0)` and `Float(NAN) == Float(NAN)`. This makes
/// equality agree with [`Value::total_cmp`] and lets `Vec<Value>` serve as
/// a hash-map key for group-by values.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the value's type, or `None` for NULL (NULL has every type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// True iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor; schema errors otherwise.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::Schema(format!("expected INT, got {other:?}"))),
        }
    }

    /// Float accessor; an INT widens losslessly-enough for aggregates.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::Schema(format!("expected FLOAT, got {other:?}"))),
        }
    }

    /// String accessor; schema errors otherwise.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(Error::Schema(format!("expected STR, got {other:?}"))),
        }
    }

    /// Encode into `w`. Layout: 1 tag byte (0 = NULL), then the payload.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Value::Null => {
                w.u8(0);
            }
            Value::Int(v) => {
                w.u8(ValueType::Int.tag()).i64(*v);
            }
            Value::Float(v) => {
                w.u8(ValueType::Float.tag()).f64(*v);
            }
            Value::Str(v) => {
                w.u8(ValueType::Str.tag()).str(v);
            }
        }
    }

    /// Decode one value from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Value> {
        let tag = r.u8()?;
        if tag == 0 {
            return Ok(Value::Null);
        }
        Ok(match ValueType::from_tag(tag)? {
            ValueType::Int => Value::Int(r.i64()?),
            ValueType::Float => Value::Float(r.f64()?),
            ValueType::Str => Value::Str(r.str()?.to_owned()),
        })
    }

    /// Total order used for sorting and B-tree comparisons.
    ///
    /// NULL sorts first; values of different types sort by type tag (the
    /// schema layer prevents mixed-type columns, so this is a tie-breaker
    /// for robustness, not a semantic statement). Floats use IEEE total
    /// ordering so that the comparison is a genuine total order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => {
                let ta = a.value_type().map(ValueType::tag).unwrap_or(0);
                let tb = b.value_type().map(ValueType::tag).unwrap_or(0);
                ta.cmp(&tb)
            }
        }
    }

    /// Numeric addition used by SUM escrow deltas. INT+INT stays INT
    /// (wrapping is a logic error and therefore checked); any float operand
    /// promotes to FLOAT. NULL absorbs (NULL + x = x), matching the
    /// "SUM ignores NULL" aggregate rule.
    pub fn numeric_add(&self, other: &Value) -> Result<Value> {
        use Value::*;
        Ok(match (self, other) {
            (Null, b) => b.clone(),
            (a, Null) => a.clone(),
            (Int(a), Int(b)) => Int(a.checked_add(*b).ok_or_else(|| {
                Error::invalid(format!("integer overflow in SUM: {a} + {b}"))
            })?),
            (a, b) => Float(a.as_float()? + b.as_float()?),
        })
    }

    /// Numeric negation (used to build inverse escrow deltas).
    pub fn numeric_neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(v.checked_neg().ok_or_else(|| {
                Error::invalid("integer overflow in negation")
            })?)),
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(Error::Schema(format!("cannot negate {other:?}"))),
        }
    }

    /// True iff this value is numerically zero (NULL is not zero).
    pub fn is_numeric_zero(&self) -> bool {
        match self {
            Value::Int(0) => true,
            Value::Float(v) => *v == 0.0,
            _ => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) => {
                state.write_u8(1);
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(2);
                state.write_u64(v.to_bits());
            }
            Value::Str(v) => {
                state.write_u8(3);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = Value::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        out
    }

    #[test]
    fn encode_decode_all_variants() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(2.25),
            Value::Str("grüße".into()),
            Value::Str(String::new()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn total_order_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::Null), Ordering::Greater);
    }

    #[test]
    fn total_order_within_types() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
        assert_eq!(Value::Float(1.0).total_cmp(&Value::Float(1.0)), Ordering::Equal);
    }

    #[test]
    fn numeric_add_int_and_float() {
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        // NULL absorbs.
        assert_eq!(
            Value::Null.numeric_add(&Value::Int(7)).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn numeric_add_overflow_checked() {
        assert!(Value::Int(i64::MAX).numeric_add(&Value::Int(1)).is_err());
    }

    #[test]
    fn negation_and_zero() {
        assert_eq!(Value::Int(5).numeric_neg().unwrap(), Value::Int(-5));
        assert!(Value::Int(0).is_numeric_zero());
        assert!(Value::Float(0.0).is_numeric_zero());
        assert!(!Value::Null.is_numeric_zero());
        assert!(Value::Str("x".into()).numeric_neg().is_err());
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
    }
}
