//! Rows: ordered tuples of [`Value`]s with a stable binary encoding.

use crate::codec::{Reader, Writer};
use crate::error::Result;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// An ordered tuple of values. Rows are schema-agnostic at this layer; the
/// catalog validates them against a [`crate::schema::Schema`].
#[derive(Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Empty row.
    pub fn empty() -> Self {
        Row { values: Vec::new() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column accessor (panics on out-of-range — arity is checked by the
    /// schema layer before rows reach storage).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Checked column accessor.
    pub fn try_get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Mutable column accessor.
    pub fn get_mut(&mut self, i: usize) -> &mut Value {
        &mut self.values[i]
    }

    /// Replace column `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Append a column.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// All values, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project the row onto the given column positions.
    pub fn project(&self, cols: &[usize]) -> Row {
        Row::new(cols.iter().map(|&c| self.values[c].clone()).collect())
    }

    /// Encode: `u16` arity then each value.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.values.len() as u16);
        for v in &self.values {
            v.encode(w);
        }
    }

    /// Encode into a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(16 * self.values.len() + 2);
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode one row.
    pub fn decode(r: &mut Reader<'_>) -> Result<Row> {
        let n = r.u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(r)?);
        }
        Ok(Row { values })
    }

    /// Decode from a standalone byte slice (must consume it exactly).
    pub fn from_bytes(bytes: &[u8]) -> Result<Row> {
        let mut r = Reader::new(bytes);
        let row = Row::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(crate::error::Error::corruption(
                "trailing bytes after row",
            ));
        }
        Ok(row)
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Convenience macro building a row from heterogenous literals.
///
/// ```
/// use txview_common::{row, Value};
/// let r = row![1i64, 2.5f64, "abc"];
/// assert_eq!(r.arity(), 3);
/// assert_eq!(r[0], Value::Int(1));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_row() {
        let r = row![7i64, "hello", 1.5f64];
        let bytes = r.to_bytes();
        assert_eq!(Row::from_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn roundtrip_with_null() {
        let mut r = row![1i64];
        r.push(Value::Null);
        let bytes = r.to_bytes();
        let back = Row::from_bytes(&bytes).unwrap();
        assert!(back[1].is_null());
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let r = row![10i64, 20i64, 30i64];
        let p = r.project(&[2, 0, 0]);
        assert_eq!(p, row![30i64, 10i64, 10i64]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = row![1i64].to_bytes();
        bytes.push(0);
        assert!(Row::from_bytes(&bytes).is_err());
    }

    #[test]
    fn debug_formatting() {
        let r = row![1i64, "x"];
        assert_eq!(format!("{r:?}"), "(1, 'x')");
    }
}
