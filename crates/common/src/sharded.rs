//! A hash-sharded map: the workspace's answer to "this `Mutex<HashMap>` is
//! a global point of serialization on the write path".
//!
//! [`ShardMap`] partitions keys over `N` independently locked `HashMap`
//! shards (the same idiom the lock manager uses for its lock table), so
//! writers touching different keys proceed in parallel. Aggregates that a
//! single map would answer under one lock (`len`, a minimum over values,
//! a full snapshot) are folded shard-by-shard on demand — each shard is
//! internally consistent, and callers that need a point-in-time view of
//! *one key* get exactly that; cross-shard aggregates are fuzzy in the
//! same way a fuzzy checkpoint is, which every current caller tolerates.
//!
//! The shard count is fixed at construction and rounded up to a power of
//! two so shard selection is a mask, not a division.

use crate::obs::Gauge;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard};

/// Lock a shard, shrugging off poisoning: a panicked holder leaves the map
/// in a consistent-enough state for the crash/torture paths that keep
/// running after `catch_unwind` (same policy as the workspace's
/// `parking_lot` shim, duplicated here so `txview-common` stays
/// dependency-free).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default shard count for registries keyed by transaction id or chain key.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent map sharded by key hash.
pub struct ShardMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    mask: usize,
    /// Approximate entry count, maintained on insert/remove so `len` does
    /// not need to take every shard lock.
    count: Gauge,
}

impl<K: Hash + Eq, V> ShardMap<K, V> {
    /// Map with `shards` shards (rounded up to the next power of two).
    pub fn new(shards: usize) -> ShardMap<K, V> {
        let n = shards.max(1).next_power_of_two();
        ShardMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect::<Vec<_>>().into_boxed_slice(),
            mask: n - 1,
            count: Gauge::default(),
        }
    }

    /// Map with [`DEFAULT_SHARDS`] shards.
    pub fn with_default_shards() -> ShardMap<K, V> {
        ShardMap::new(DEFAULT_SHARDS)
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Insert, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let prev = lock(self.shard(&key)).insert(key, value);
        if prev.is_none() {
            self.count.add(1);
        }
        prev
    }

    /// Remove, returning the value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        let prev = lock(self.shard(key)).remove(key);
        if prev.is_some() {
            self.count.add(-1);
        }
        prev
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        lock(self.shard(key)).contains_key(key)
    }

    /// Clone out the value for a key.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        lock(self.shard(key)).get(key).cloned()
    }

    /// Run `f` on the value slot for `key` (present or not) under the
    /// shard lock. The single-key equivalent of `map.get_mut(&key)`.
    pub fn update<R>(&self, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(lock(self.shard(key)).get_mut(key))
    }

    /// Run `f` on the entry for `key`, default-inserting it first if
    /// absent (the `entry().or_default()` idiom under one shard lock).
    pub fn with_entry<R>(&self, key: K, f: impl FnOnce(&mut V) -> R) -> R
    where
        V: Default,
    {
        let mut guard = lock(self.shard(&key));
        let len_before = guard.len();
        let out = f(guard.entry(key).or_default());
        if guard.len() > len_before {
            self.count.add(1);
        }
        out
    }

    /// Entry count (maintained atomically; exact whenever no insert/remove
    /// is mid-flight).
    pub fn len(&self) -> usize {
        self.count.get().max(0) as usize
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove everything.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut guard = lock(shard);
            self.count.add(-(guard.len() as i64));
            guard.clear();
        }
    }

    /// Fold over every entry, locking one shard at a time in fixed shard
    /// order. The result is a fuzzy aggregate: each shard is consistent,
    /// the whole is not a single atomic snapshot.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            let guard = lock(shard);
            for (k, v) in guard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }

    /// All keys, shard by shard (order is shard order then map order —
    /// callers needing determinism must sort).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        self.fold(Vec::new(), |mut acc, k, _| {
            acc.push(k.clone());
            acc
        })
    }

    /// Clone out every entry, shard by shard.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        self.fold(Vec::new(), |mut acc, k, v| {
            acc.push((k.clone(), v.clone()));
            acc
        })
    }
}

impl<K: Hash + Eq, V> Default for ShardMap<K, V> {
    fn default() -> ShardMap<K, V> {
        ShardMap::with_default_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_len_roundtrip() {
        let m: ShardMap<u64, u32> = ShardMap::new(4);
        assert!(m.is_empty());
        for i in 0..100u64 {
            assert!(m.insert(i, i as u32).is_none());
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.insert(7, 99), Some(7));
        assert_eq!(m.len(), 100, "overwrite does not change the count");
        assert_eq!(m.get_cloned(&7), Some(99));
        assert_eq!(m.remove(&7), Some(99));
        assert_eq!(m.remove(&7), None);
        assert_eq!(m.len(), 99);
    }

    #[test]
    fn with_entry_defaults_and_counts_once() {
        let m: ShardMap<u32, Vec<u8>> = ShardMap::new(2);
        m.with_entry(1, |v| v.push(b'a'));
        m.with_entry(1, |v| v.push(b'b'));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get_cloned(&1), Some(vec![b'a', b'b']));
    }

    #[test]
    fn update_sees_missing_and_present() {
        let m: ShardMap<u32, u32> = ShardMap::new(2);
        assert!(!m.update(&5, |slot| slot.is_some()));
        m.insert(5, 10);
        m.update(&5, |slot| *slot.unwrap() += 1);
        assert_eq!(m.get_cloned(&5), Some(11));
    }

    #[test]
    fn fold_and_clear_cover_all_shards() {
        let m: ShardMap<u64, u64> = ShardMap::new(8);
        for i in 0..64 {
            m.insert(i, i * 2);
        }
        let sum = m.fold(0u64, |a, _, v| a + v);
        assert_eq!(sum, (0..64).map(|i| i * 2).sum::<u64>());
        let mut keys = m.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..64).collect::<Vec<_>>());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.fold(0u64, |a, _, _| a + 1), 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardMap::<u8, u8>::new(3).shard_count(), 4);
        assert_eq!(ShardMap::<u8, u8>::new(1).shard_count(), 1);
        assert_eq!(ShardMap::<u8, u8>::new(0).shard_count(), 1);
        assert_eq!(ShardMap::<u8, u8>::new(16).shard_count(), 16);
    }

    #[test]
    fn concurrent_inserts_land_exactly_once() {
        use std::sync::Arc;
        let m: Arc<ShardMap<u64, u64>> = Arc::new(ShardMap::new(8));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        m.insert(t * 1000 + i, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.fold(0usize, |a, _, _| a + 1), 1000);
    }
}
