//! Hand-written little-endian binary codec.
//!
//! Pages, log records, rows, and catalog entries are all serialized through
//! [`Writer`] and deserialized through [`Reader`]. Keeping the codec in one
//! tiny module makes the on-disk format explicit and easy to audit, and
//! avoids pulling a serialization framework into the storage layer.
//!
//! Conventions:
//! * integers are little-endian fixed width,
//! * byte strings are a `u32` length followed by the bytes,
//! * decoding never panics — malformed input yields [`Error::Corruption`].

use crate::error::{Error, Result};
use crate::ids::{Lsn, PageId, TxnId};

/// Append-only binary writer over a `Vec<u8>`.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// New writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `i64` (little-endian two's complement).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `f64` (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Write raw bytes with no length prefix (caller knows the length).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Write an [`Lsn`].
    pub fn lsn(&mut self, v: Lsn) -> &mut Self {
        self.u64(v.0)
    }

    /// Write a [`TxnId`].
    pub fn txn(&mut self, v: TxnId) -> &mut Self {
        self.u64(v.0)
    }

    /// Write a [`PageId`].
    pub fn page(&mut self, v: PageId) -> &mut Self {
        self.u32(v.0)
    }
}

/// Cursor-based binary reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// New reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor reached the end of the buffer.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption(format!(
                "codec underrun: want {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::corruption(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| Error::corruption("invalid utf-8 in string"))
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read an [`Lsn`].
    pub fn lsn(&mut self) -> Result<Lsn> {
        Ok(Lsn(self.u64()?))
    }

    /// Read a [`TxnId`].
    pub fn txn(&mut self) -> Result<TxnId> {
        Ok(TxnId(self.u64()?))
    }

    /// Read a [`PageId`].
    pub fn page(&mut self) -> Result<PageId> {
        Ok(PageId(self.u32()?))
    }
}

/// Simple 64-bit FNV-1a checksum used by pages and log records.
///
/// Not cryptographic — it only needs to detect torn writes and bit rot in
/// tests and crash simulations.
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i64(-5).f64(3.5).bool(true);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert!(r.bool().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_strings_and_ids() {
        let mut w = Writer::new();
        w.str("hello").bytes(b"\x00\xff").lsn(Lsn(9)).txn(TxnId(4)).page(PageId(2));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), b"\x00\xff");
        assert_eq!(r.lsn().unwrap(), Lsn(9));
        assert_eq!(r.txn().unwrap(), TxnId(4));
        assert_eq!(r.page().unwrap(), PageId(2));
    }

    #[test]
    fn underrun_is_corruption_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(Error::Corruption(_))));
    }

    #[test]
    fn invalid_bool_is_corruption() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(r.bool(), Err(Error::Corruption(_))));
    }

    #[test]
    fn truncated_bytes_is_corruption() {
        let mut w = Writer::new();
        w.bytes(b"abcdef");
        let mut bytes = w.into_bytes();
        bytes.truncate(6); // cut into the payload
        let mut r = Reader::new(&bytes);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn checksum_detects_flip() {
        let a = checksum64(b"hello world");
        let b = checksum64(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, checksum64(b"hello world"));
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let mut w = Writer::new();
        w.f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.f64().unwrap().is_nan());
    }
}
