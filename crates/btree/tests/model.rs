//! Property-based model checking of the B+ tree against `BTreeMap`,
//! with structural validation after every mutation batch.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use txview_btree::{logctx::LogCtx, tree::Tree, OpLog};
use txview_common::{IndexId, Key, Lsn, Value};
use txview_storage::buffer::BufferPool;
use txview_storage::disk::MemDisk;
use txview_wal::record::UndoOp;
use txview_wal::LogManager;

#[derive(Clone, Debug)]
enum TreeOp {
    Insert { k: i64, len: usize },
    Ghost { k: i64 },
    Revive { k: i64, len: usize },
    Update { k: i64, len: usize },
    Remove { k: i64 },
}

fn arb_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        5 => (0i64..200, 1usize..300).prop_map(|(k, len)| TreeOp::Insert { k, len }),
        2 => (0i64..200).prop_map(|k| TreeOp::Ghost { k }),
        1 => (0i64..200, 1usize..300).prop_map(|(k, len)| TreeOp::Revive { k, len }),
        2 => (0i64..200, 1usize..300).prop_map(|(k, len)| TreeOp::Update { k, len }),
        1 => (0i64..200).prop_map(|k| TreeOp::Remove { k }),
    ]
}

fn value_of(k: i64, len: usize) -> Vec<u8> {
    let mut v = vec![(k % 251) as u8; len];
    if let Some(first) = v.first_mut() {
        *first = (len % 251) as u8;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random interleavings of inserts/ghosts/revives/updates/removes
    /// behave exactly like a BTreeMap<i64, (ghost, value)>, and the tree
    /// stays structurally valid throughout.
    #[test]
    fn tree_matches_btreemap(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let log = Arc::new(LogManager::in_memory());
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 128);
        let l2 = Arc::clone(&log);
        pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
        let tree = Tree::create(&pool, &log, IndexId(1)).unwrap();
        let mut model: BTreeMap<i64, (bool, Vec<u8>)> = BTreeMap::new();

        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let how = OpLog::Update { undo: UndoOp::None };

        for op in &ops {
            let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
            match op {
                TreeOp::Insert { k, len } => {
                    let key = Key::from_values(&[Value::Int(*k)]);
                    let v = value_of(*k, *len);
                    let res = tree.insert(&key, &v, &mut ctx, &how);
                    match model.get(k) {
                        Some((false, _)) => prop_assert!(res.is_err(), "dup insert must fail"),
                        _ => {
                            res.unwrap();
                            model.insert(*k, (false, v));
                        }
                    }
                }
                TreeOp::Ghost { k } => {
                    let key = Key::from_values(&[Value::Int(*k)]);
                    let res = tree.set_ghost(&key, true, &mut ctx, &how);
                    if let Some((_, v)) = model.get(k) {
                        prop_assert_eq!(res.unwrap(), v.clone());
                        let v = v.clone();
                        model.insert(*k, (true, v));
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                TreeOp::Revive { k, len } => {
                    // Insert on an existing ghost replaces its value.
                    if let Some((true, _)) = model.get(k) {
                        let key = Key::from_values(&[Value::Int(*k)]);
                        let v = value_of(*k, *len);
                        tree.insert(&key, &v, &mut ctx, &how).unwrap();
                        model.insert(*k, (false, v));
                    }
                }
                TreeOp::Update { k, len } => {
                    let key = Key::from_values(&[Value::Int(*k)]);
                    let v = value_of(*k, *len);
                    let res = tree.update_value(&key, &v, &mut ctx, &how);
                    if let Some((g, _)) = model.get(k).cloned() {
                        res.unwrap();
                        model.insert(*k, (g, v));
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                TreeOp::Remove { k } => {
                    let key = Key::from_values(&[Value::Int(*k)]);
                    let res = tree.remove_record(&key, &mut ctx, &how);
                    if model.remove(k).is_some() {
                        res.unwrap();
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
            }
        }

        // Structural invariants hold and the record count matches.
        let physical = tree.validate().unwrap();
        prop_assert_eq!(physical, model.len());

        // Full scans agree (live-only and with ghosts).
        let (all, next) = tree.scan(None, None, true).unwrap();
        prop_assert!(next.is_none());
        prop_assert_eq!(all.len(), model.len());
        for (item, (k, (ghost, v))) in all.iter().zip(model.iter()) {
            let expected_key = Key::from_values(&[Value::Int(*k)]);
            prop_assert_eq!(&item.key, expected_key.as_bytes());
            prop_assert_eq!(item.ghost, *ghost);
            prop_assert_eq!(&item.value, v);
        }
        let (live, _) = tree.scan(None, None, false).unwrap();
        prop_assert_eq!(live.len(), model.values().filter(|(g, _)| !g).count());

        // Point lookups agree on a sample.
        for k in (0..200).step_by(17) {
            let key = Key::from_values(&[Value::Int(k)]);
            let got = tree.get(&key).unwrap();
            match model.get(&k) {
                Some((g, v)) => prop_assert_eq!(got, Some((*g, v.clone()))),
                None => prop_assert_eq!(got, None),
            }
        }

        // Descending scan is the reverse of ascending.
        let desc = tree.scan_desc(None, None, true).unwrap();
        let mut fwd = all;
        fwd.reverse();
        prop_assert_eq!(desc, fwd);
    }
}

// ---- reopen after crash --------------------------------------------------

/// Page splits run as system transactions that commit independently of the
/// user transaction whose insert triggered them. After a crash that loses
/// an in-flight user transaction, recovery must keep the committed split
/// structure, replay the committed inserts, logically undo the loser's,
/// and leave a tree that still validates.
#[test]
fn committed_splits_survive_crash_that_loses_the_user_txn() {
    use txview_common::{Result as TxResult, TxnId};
    use txview_storage::disk::DiskManager;
    use txview_storage::fault::{FaultClock, FaultDisk, FaultPoint, FaultSchedule};
    use txview_wal::{recover, FaultLogStore, RecordBody, TxnKind, UndoHandler};

    const INDEX: IndexId = IndexId(9);

    /// Minimal logical-undo executor: the only user-level operation this
    /// test logs is an insert, whose inverse is ghosting the key.
    struct GhostInserts<'a> {
        tree: &'a Tree,
        log: &'a LogManager,
    }
    impl UndoHandler for GhostInserts<'_> {
        fn undo(&self, txn: TxnId, op: &UndoOp, undo_next: Lsn, chain: &mut Lsn) -> TxResult<()> {
            match op {
                UndoOp::IndexInsert { key, .. } => {
                    let mut ctx = LogCtx { log: self.log, txn, last_lsn: chain };
                    let k = Key::from_bytes(key.clone());
                    self.tree.set_ghost(&k, true, &mut ctx, &OpLog::Clr { undo_next })?;
                    Ok(())
                }
                other => panic!("unexpected logical undo {other:?}"),
            }
        }
    }

    fn insert_range(tree: &Tree, log: &LogManager, txn: txview_common::TxnId, last: &mut Lsn, range: std::ops::Range<i64>) {
        for k in range {
            let key = Key::from_values(&[Value::Int(k)]);
            let undo = UndoOp::IndexInsert { index: INDEX, key: key.as_bytes().to_vec() };
            let mut ctx = LogCtx { log, txn, last_lsn: last };
            tree.insert(&key, &value_of(k, 300), &mut ctx, &OpLog::Update { undo }).unwrap();
        }
    }

    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));

    let root = {
        let pool = BufferPool::new(Arc::new(disk.clone()), 128);
        let log = Arc::new(LogManager::open(Box::new(store.clone())).unwrap());
        let l2 = Arc::clone(&log);
        pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
        let tree = Tree::create(&pool, &log, INDEX).unwrap();

        // Committed transaction: 300-byte values force leaf splits.
        let txn_a = log.alloc_txn_id();
        let mut last = log.append(txn_a, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        insert_range(&tree, &log, txn_a, &mut last, 0..80);
        log.append(txn_a, last, RecordBody::Commit);
        log.flush_all().unwrap();
        assert!(disk.num_pages() > 4, "workload too small to split");

        // Loser transaction: more splits, records made durable mid-flight
        // (and some dirty pages stolen to disk), but never committed.
        let txn_b = log.alloc_txn_id();
        let mut last = log.append(txn_b, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        insert_range(&tree, &log, txn_b, &mut last, 1000..1040);
        log.flush_all().unwrap();
        pool.flush_all().unwrap();

        // Hard crash: everything from this event on is gone.
        clock.arm(&FaultSchedule::crash_at(0));
        clock.tick(FaultPoint::Probe("model.crash"));
        tree.root()
    };
    disk.crash_restore();
    store.crash_restore();
    clock.disarm();

    // Reboot onto the durable image and recover.
    let pool = BufferPool::new(Arc::new(disk.clone()), 128);
    let log = Arc::new(LogManager::open(Box::new(store.clone())).unwrap());
    let l2 = Arc::clone(&log);
    pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
    let tree = Tree::open(&pool, INDEX, root);

    let handler = GhostInserts { tree: &tree, log: &log };
    let report = recover(&log, &pool, &handler).unwrap();
    assert_eq!(report.losers, 1, "exactly the uncommitted user txn loses");
    assert!(report.winners >= 1);
    assert_eq!(report.logical_undos, 40, "every loser insert undone");

    // Committed keys survive with their exact values; the split structure
    // validates; the loser's keys are ghosts awaiting cleanup.
    let physical = tree.validate().unwrap();
    assert_eq!(physical, 80 + 40);
    for k in 0..80 {
        let key = Key::from_values(&[Value::Int(k)]);
        assert_eq!(tree.get(&key).unwrap(), Some((false, value_of(k, 300))));
    }
    for k in 1000..1040 {
        let key = Key::from_values(&[Value::Int(k)]);
        match tree.get(&key).unwrap() {
            Some((true, _)) => {}
            other => panic!("loser key {k} not ghosted: {other:?}"),
        }
    }

    // Redo is idempotent: a second recovery pass finds no losers and
    // applies nothing new.
    let again = recover(&log, &pool, &handler).unwrap();
    assert_eq!(again.losers, 0);
    assert_eq!(again.redo_applied, 0);
    assert_eq!(again.logical_undos, 0);
}
