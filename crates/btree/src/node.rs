//! Node layout: header accessors and record codecs for leaf and interior
//! pages.
//!
//! Page payload layout (after the 32-byte page header):
//!
//! ```text
//! [ 16-byte node header | slotted area ]
//! node header: level:u8 flags:u8 right_sibling:u32 reserved:10
//! leaf record: ghost:u8 key_len:u16 key value-bytes
//! interior record: key_len:u16 key child:u32
//! ```
//!
//! Interior nodes hold `(separator, child)` pairs; `child` covers keys
//! `>= separator`, and the first separator of every interior node is the
//! minimal (empty) key, so descent never falls off the left edge.

use txview_common::{Error, Key, PageId, Result};
use txview_storage::page::Page;
use txview_storage::slotted::{Slotted, SlottedRef};
use txview_wal::log::PAYLOAD_HEADER_LEN;
use txview_wal::record::RedoOp;

/// Offset of the ghost flag within a leaf record.
pub const GHOST_FLAG_OFFSET: usize = 0;
/// Largest key+value record the tree accepts (guarantees ≥4 records/leaf).
pub const MAX_RECORD_BYTES: usize = 1900;

const OFF_LEVEL: usize = 0;
const OFF_RIGHT: usize = 2;

/// Node level of a page (0 = leaf).
pub fn level(page: &Page) -> u8 {
    page.payload()[OFF_LEVEL]
}

/// The right-sibling pointer.
pub fn right_sibling(page: &Page) -> PageId {
    PageId(u32::from_le_bytes(
        page.payload()[OFF_RIGHT..OFF_RIGHT + 4].try_into().unwrap(),
    ))
}

/// Initialize a node header in a freshly formatted payload (the slotted
/// area must already be formatted by the `FormatPage` redo op).
pub fn init_header(page: &mut Page, lvl: u8, right: PageId) {
    let p = page.payload_mut();
    p[OFF_LEVEL] = lvl;
    p[OFF_RIGHT..OFF_RIGHT + 4].copy_from_slice(&right.0.to_le_bytes());
}

/// Build the redo/inverse pair for setting the right-sibling pointer.
pub fn right_sibling_patch(page: &Page, new: PageId) -> (RedoOp, RedoOp) {
    let old = right_sibling(page);
    (
        RedoOp::Patch { off: OFF_RIGHT as u16, bytes: new.0.to_le_bytes().to_vec() },
        RedoOp::Patch { off: OFF_RIGHT as u16, bytes: old.0.to_le_bytes().to_vec() },
    )
}

/// Build the redo/inverse pair for setting the level byte (root push-down).
pub fn level_patch(page: &Page, new: u8) -> (RedoOp, RedoOp) {
    let old = level(page);
    (
        RedoOp::Patch { off: OFF_LEVEL as u16, bytes: vec![new] },
        RedoOp::Patch { off: OFF_LEVEL as u16, bytes: vec![old] },
    )
}

/// Read-only slotted view of a node.
pub fn slots(page: &Page) -> SlottedRef<'_> {
    SlottedRef::wrap(&page.payload()[PAYLOAD_HEADER_LEN..])
}

/// Mutable slotted view of a node.
pub fn slots_mut(page: &mut Page) -> Slotted<'_> {
    Slotted::wrap(&mut page.payload_mut()[PAYLOAD_HEADER_LEN..])
}

/// A decoded leaf record.
#[derive(Clone, PartialEq, Debug)]
pub struct LeafRecord<'a> {
    /// Ghost flag: true = logically deleted.
    pub ghost: bool,
    /// The record's key bytes.
    pub key: &'a [u8],
    /// The record's value bytes.
    pub value: &'a [u8],
}

/// Encode a leaf record.
pub fn encode_leaf(ghost: bool, key: &Key, value: &[u8]) -> Vec<u8> {
    let kb = key.as_bytes();
    let mut out = Vec::with_capacity(3 + kb.len() + value.len());
    out.push(ghost as u8);
    out.extend_from_slice(&(kb.len() as u16).to_le_bytes());
    out.extend_from_slice(kb);
    out.extend_from_slice(value);
    out
}

/// Decode a leaf record.
pub fn decode_leaf(rec: &[u8]) -> Result<LeafRecord<'_>> {
    if rec.len() < 3 {
        return Err(Error::corruption("leaf record too short"));
    }
    let ghost = rec[0] != 0;
    let klen = u16::from_le_bytes(rec[1..3].try_into().unwrap()) as usize;
    if rec.len() < 3 + klen {
        return Err(Error::corruption("leaf record key overruns record"));
    }
    Ok(LeafRecord { ghost, key: &rec[3..3 + klen], value: &rec[3 + klen..] })
}

/// Byte offset of the value region within a leaf record with this key.
pub fn leaf_value_offset(key_len: usize) -> usize {
    3 + key_len
}

/// Encode an interior record.
pub fn encode_interior(sep: &[u8], child: PageId) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + sep.len());
    out.extend_from_slice(&(sep.len() as u16).to_le_bytes());
    out.extend_from_slice(sep);
    out.extend_from_slice(&child.0.to_le_bytes());
    out
}

/// Decode an interior record into (separator, child).
pub fn decode_interior(rec: &[u8]) -> Result<(&[u8], PageId)> {
    if rec.len() < 6 {
        return Err(Error::corruption("interior record too short"));
    }
    let klen = u16::from_le_bytes(rec[0..2].try_into().unwrap()) as usize;
    if rec.len() != 2 + klen + 4 {
        return Err(Error::corruption("interior record length mismatch"));
    }
    let child = PageId(u32::from_le_bytes(rec[2 + klen..].try_into().unwrap()));
    Ok((&rec[2..2 + klen], child))
}

/// Binary-search a leaf for `key`: `Ok(idx)` if present, `Err(pos)` where it
/// would insert.
pub fn leaf_search(page: &Page, key: &[u8]) -> std::result::Result<usize, usize> {
    let s = slots(page);
    let mut lo = 0usize;
    let mut hi = s.count();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let rec = s.get(mid);
        let klen = u16::from_le_bytes(rec[1..3].try_into().unwrap()) as usize;
        let k = &rec[3..3 + klen];
        match k.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Find the child an interior node routes `key` to: the last entry whose
/// separator is `<= key`. Returns (slot index, child page).
pub fn interior_route(page: &Page, key: &[u8]) -> Result<(usize, PageId)> {
    let s = slots(page);
    let n = s.count();
    if n == 0 {
        return Err(Error::corruption("empty interior node"));
    }
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (sep, _) = decode_interior(s.get(mid))?;
        if sep <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // lo = first entry with sep > key; route to lo-1 (first sep is minimal).
    let idx = lo.checked_sub(1).ok_or_else(|| Error::corruption("key below interior low fence"))?;
    let (_, child) = decode_interior(s.get(idx))?;
    Ok((idx, child))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::Value;
    use txview_storage::page::PageType;

    fn leaf_page_with(keys: &[i64]) -> Page {
        let mut page = Page::new(PageType::BTreeLeaf);
        Slotted::format(&mut page.payload_mut()[PAYLOAD_HEADER_LEN..]);
        init_header(&mut page, 0, PageId::NULL);
        for (i, k) in keys.iter().enumerate() {
            let rec = encode_leaf(false, &Key::from_values(&[Value::Int(*k)]), b"v");
            slots_mut(&mut page).insert_at(i, &rec).unwrap();
        }
        page
    }

    #[test]
    fn header_roundtrip() {
        let mut page = Page::new(PageType::BTreeLeaf);
        init_header(&mut page, 3, PageId(42));
        assert_eq!(level(&page), 3);
        assert_eq!(right_sibling(&page), PageId(42));
    }

    #[test]
    fn right_sibling_patch_has_correct_inverse() {
        let mut page = Page::new(PageType::BTreeLeaf);
        init_header(&mut page, 0, PageId(7));
        let (redo, inverse) = right_sibling_patch(&page, PageId(9));
        redo.apply(page.payload_mut(), PAYLOAD_HEADER_LEN).unwrap();
        assert_eq!(right_sibling(&page), PageId(9));
        inverse.apply(page.payload_mut(), PAYLOAD_HEADER_LEN).unwrap();
        assert_eq!(right_sibling(&page), PageId(7));
    }

    #[test]
    fn leaf_record_roundtrip() {
        let key = Key::from_values(&[Value::Int(5), Value::Str("x".into())]);
        let rec = encode_leaf(true, &key, b"payload");
        let dec = decode_leaf(&rec).unwrap();
        assert!(dec.ghost);
        assert_eq!(dec.key, key.as_bytes());
        assert_eq!(dec.value, b"payload");
        assert_eq!(leaf_value_offset(key.len()), rec.len() - 7);
    }

    #[test]
    fn interior_record_roundtrip() {
        let rec = encode_interior(b"sep", PageId(12));
        let (sep, child) = decode_interior(&rec).unwrap();
        assert_eq!(sep, b"sep");
        assert_eq!(child, PageId(12));
        // Minimal separator encodes fine too.
        let rec = encode_interior(b"", PageId(1));
        assert_eq!(decode_interior(&rec).unwrap().0, b"");
    }

    #[test]
    fn leaf_search_finds_and_positions() {
        let page = leaf_page_with(&[10, 20, 30]);
        let k = |v: i64| Key::from_values(&[Value::Int(v)]);
        assert_eq!(leaf_search(&page, k(20).as_bytes()), Ok(1));
        assert_eq!(leaf_search(&page, k(5).as_bytes()), Err(0));
        assert_eq!(leaf_search(&page, k(25).as_bytes()), Err(2));
        assert_eq!(leaf_search(&page, k(35).as_bytes()), Err(3));
    }

    #[test]
    fn interior_route_picks_covering_child() {
        let mut page = Page::new(PageType::BTreeInterior);
        Slotted::format(&mut page.payload_mut()[PAYLOAD_HEADER_LEN..]);
        init_header(&mut page, 1, PageId::NULL);
        let k = |v: i64| Key::from_values(&[Value::Int(v)]);
        // children: (-inf..10) -> 100, [10..20) -> 200, [20..) -> 300
        let entries = [
            (Key::min(), PageId(100)),
            (k(10), PageId(200)),
            (k(20), PageId(300)),
        ];
        for (i, (sep, child)) in entries.iter().enumerate() {
            let rec = encode_interior(sep.as_bytes(), *child);
            slots_mut(&mut page).insert_at(i, &rec).unwrap();
        }
        assert_eq!(interior_route(&page, k(5).as_bytes()).unwrap().1, PageId(100));
        assert_eq!(interior_route(&page, k(10).as_bytes()).unwrap().1, PageId(200));
        assert_eq!(interior_route(&page, k(15).as_bytes()).unwrap().1, PageId(200));
        assert_eq!(interior_route(&page, k(99).as_bytes()).unwrap().1, PageId(300));
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(decode_leaf(&[1]).is_err());
        assert!(decode_leaf(&[0, 10, 0, 1]).is_err()); // klen 10 > remaining
        assert!(decode_interior(&[0]).is_err());
        assert!(decode_interior(&[3, 0, b'a', 1, 0, 0, 0]).is_err()); // bad len
    }
}
