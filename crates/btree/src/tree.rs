//! The B+ tree proper: descent, single-record operations, range scans, and
//! structure modifications run as system transactions.
//!
//! See the crate docs for the latching protocol. All mutating operations
//! take a [`LogCtx`] (whose transaction owns the change) and an [`OpLog`]
//! describing how to log it (forward op with logical undo, CLR, system op).

use crate::logctx::{LogCtx, OpLog};
use crate::node;
use parking_lot::RwLock;
use std::sync::Arc;
use txview_common::{Error, IndexId, Key, Lsn, PageId, Result};
use txview_storage::buffer::{BufferPool, PinnedPage};
use txview_storage::page::PageType;
use txview_wal::log::PAYLOAD_HEADER_LEN;
use txview_wal::record::{RecordBody, RedoOp, TxnKind, UndoOp};
use txview_wal::LogManager;

/// Maximum encoded key size accepted by the tree. Interior nodes reserve
/// room for one worst-case separator, bounding preemptive splits.
pub const MAX_KEY_BYTES: usize = 512;
const SEP_RESERVE: usize = MAX_KEY_BYTES + 6 + 4;

/// One item returned by a range scan.
#[derive(Clone, PartialEq, Debug)]
pub struct ScanItem {
    /// Encoded key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
    /// Ghost flag (logically deleted).
    pub ghost: bool,
}

/// A B+ tree over a buffer pool. The root page id is fixed for the life of
/// the index.
pub struct Tree {
    index_id: IndexId,
    root: PageId,
    pool: Arc<BufferPool>,
    latch: RwLock<()>,
}

impl Tree {
    /// Create a new empty tree: allocates the root leaf and logs its format
    /// under a system transaction (flushed, so DDL survives any crash).
    pub fn create(pool: &Arc<BufferPool>, log: &LogManager, index_id: IndexId) -> Result<Tree> {
        let (root, page) = pool.new_page(PageType::BTreeLeaf)?;
        let sys = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn: sys, last_lsn: &mut last };
        ctx.append(RecordBody::Begin { kind: TxnKind::System });
        {
            let mut g = page.write();
            let fmt = RedoOp::FormatPage { ty: 2, header_len: PAYLOAD_HEADER_LEN as u16 };
            fmt.apply(g.payload_mut(), PAYLOAD_HEADER_LEN)?;
            node::init_header(&mut g, 0, PageId::NULL);
            let lsn = ctx.append(RecordBody::Update { page: root, redo: fmt, undo: UndoOp::None });
            // The header init is part of the format for logging purposes:
            // log it as a patch so redo rebuilds the same header.
            let hdr = RedoOp::Patch { off: 0, bytes: g.payload()[..PAYLOAD_HEADER_LEN].to_vec() };
            let lsn2 = ctx.append(RecordBody::Update { page: root, redo: hdr, undo: UndoOp::None });
            let _ = lsn;
            g.set_lsn(lsn2);
        }
        let commit = ctx.append(RecordBody::Commit);
        ctx.append(RecordBody::End);
        log.flush_to(commit)?;
        Ok(Tree { index_id, root, pool: Arc::clone(pool), latch: RwLock::new(()) })
    }

    /// Open an existing tree rooted at `root`.
    pub fn open(pool: &Arc<BufferPool>, index_id: IndexId, root: PageId) -> Tree {
        Tree { index_id, root, pool: Arc::clone(pool), latch: RwLock::new(()) }
    }

    /// The index id this tree serves.
    pub fn index_id(&self) -> IndexId {
        self.index_id
    }

    /// The (fixed) root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Descend to the leaf that owns `key`. Caller holds the tree latch.
    fn find_leaf(&self, key: &[u8]) -> Result<PinnedPage> {
        let mut page = self.pool.fetch(self.root)?;
        loop {
            let child = {
                let g = page.read();
                if node::level(&g) == 0 {
                    None
                } else {
                    Some(node::interior_route(&g, key)?.1)
                }
            };
            match child {
                None => return Ok(page),
                Some(c) => page = self.pool.fetch(c)?,
            }
        }
    }

    /// Point lookup: `(ghost, value bytes)` if the key exists physically.
    pub fn get(&self, key: &Key) -> Result<Option<(bool, Vec<u8>)>> {
        let _t = self.latch.read();
        let leaf = self.find_leaf(key.as_bytes())?;
        let g = leaf.read();
        match node::leaf_search(&g, key.as_bytes()) {
            Ok(idx) => {
                let rec = node::decode_leaf(node::slots(&g).get(idx))?;
                Ok(Some((rec.ghost, rec.value.to_vec())))
            }
            Err(_) => Ok(None),
        }
    }

    /// Apply a slotted redo op to a latched page and log it.
    fn apply_logged(
        page: &PinnedPage,
        guard: &mut txview_storage::buffer::PageWriteGuard<'_>,
        redo: RedoOp,
        inverse: RedoOp,
        ctx: &mut LogCtx<'_>,
        how: &OpLog,
    ) -> Result<()> {
        redo.apply(guard.payload_mut(), PAYLOAD_HEADER_LEN)?;
        let lsn = ctx.log_op(page.id(), redo, inverse, how);
        if !lsn.is_null() {
            guard.set_lsn(lsn);
        }
        Ok(())
    }

    /// Insert `key → value`. Fails with [`Error::DuplicateKey`] if a live
    /// record exists; a ghost with the same key is revived in place.
    pub fn insert(&self, key: &Key, value: &[u8], ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<()> {
        let rec = node::encode_leaf(false, key, value);
        if rec.len() > node::MAX_RECORD_BYTES || key.len() > MAX_KEY_BYTES {
            return Err(Error::RecordTooLarge { size: rec.len(), max: node::MAX_RECORD_BYTES });
        }
        loop {
            {
                let _t = self.latch.read();
                let leaf = self.find_leaf(key.as_bytes())?;
                let mut g = leaf.write();
                match node::leaf_search(&g, key.as_bytes()) {
                    Ok(idx) => {
                        let old = node::slots(&g).get(idx).to_vec();
                        let dec = node::decode_leaf(&old)?;
                        if !dec.ghost {
                            return Err(Error::DuplicateKey(format!("{key:?}")));
                        }
                        // Revive the ghost with the new value.
                        let grow = rec.len().saturating_sub(old.len());
                        if node::slots(&g).free_space() < grow {
                            // fall through to split
                        } else {
                            let redo = RedoOp::SlotUpdate { idx: idx as u16, bytes: rec.clone() };
                            let inverse = RedoOp::SlotUpdate { idx: idx as u16, bytes: old };
                            Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
                            return Ok(());
                        }
                    }
                    Err(pos) => {
                        if node::slots(&g).free_space() >= rec.len() + 8 {
                            let redo = RedoOp::SlotInsert { idx: pos as u16, bytes: rec.clone() };
                            let inverse = RedoOp::SlotRemove { idx: pos as u16 };
                            Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
                            return Ok(());
                        }
                    }
                }
            }
            // Leaf needs room: run a split SMO and retry.
            self.split_for(key.as_bytes(), rec.len() + 8, ctx.log)?;
        }
    }

    /// Set or clear the ghost flag of an existing record; returns its value
    /// bytes (callers build undo descriptors and view deltas from them).
    pub fn set_ghost(&self, key: &Key, ghost: bool, ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<Vec<u8>> {
        let _t = self.latch.read();
        let leaf = self.find_leaf(key.as_bytes())?;
        let mut g = leaf.write();
        let idx = node::leaf_search(&g, key.as_bytes())
            .map_err(|_| Error::NotFound(format!("{key:?} in index {}", self.index_id.0)))?;
        let old_rec = node::slots(&g).get(idx).to_vec();
        let dec = node::decode_leaf(&old_rec)?;
        let value = dec.value.to_vec();
        let was = dec.ghost;
        if was == ghost {
            return Ok(value);
        }
        let redo = RedoOp::SlotPatch {
            idx: idx as u16,
            off: node::GHOST_FLAG_OFFSET as u16,
            bytes: vec![ghost as u8],
        };
        let inverse = RedoOp::SlotPatch {
            idx: idx as u16,
            off: node::GHOST_FLAG_OFFSET as u16,
            bytes: vec![was as u8],
        };
        Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
        Ok(value)
    }

    /// Replace the value of an existing record (live or ghost); returns the
    /// old value bytes.
    pub fn update_value(&self, key: &Key, new_value: &[u8], ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<Vec<u8>> {
        loop {
            {
                let _t = self.latch.read();
                let leaf = self.find_leaf(key.as_bytes())?;
                let mut g = leaf.write();
                let idx = node::leaf_search(&g, key.as_bytes())
                    .map_err(|_| Error::NotFound(format!("{key:?} in index {}", self.index_id.0)))?;
                let old_rec = node::slots(&g).get(idx).to_vec();
                let dec = node::decode_leaf(&old_rec)?;
                let new_rec = node::encode_leaf(dec.ghost, key, new_value);
                if new_rec.len() > node::MAX_RECORD_BYTES {
                    return Err(Error::RecordTooLarge { size: new_rec.len(), max: node::MAX_RECORD_BYTES });
                }
                let old_value = dec.value.to_vec();
                let grow = new_rec.len().saturating_sub(old_rec.len());
                if node::slots(&g).free_space() >= grow {
                    let redo = RedoOp::SlotUpdate { idx: idx as u16, bytes: new_rec };
                    let inverse = RedoOp::SlotUpdate { idx: idx as u16, bytes: old_rec };
                    Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
                    return Ok(old_value);
                }
            }
            self.split_for(key.as_bytes(), new_value.len() + key.len() + 16, ctx.log)?;
        }
    }

    /// Read-modify-write of the tail of a record's value starting at
    /// `region_off` (escrow apply). `f` receives the current region bytes
    /// and must return replacement bytes of the SAME length; everything
    /// happens under one leaf latch, so concurrent escrow transactions
    /// serialize physically while remaining concurrent logically.
    pub fn modify_value_region<F>(
        &self,
        key: &Key,
        region_off: usize,
        f: F,
        ctx: &mut LogCtx<'_>,
        how: &OpLog,
    ) -> Result<()>
    where
        F: FnOnce(&[u8]) -> Result<Vec<u8>>,
    {
        let _t = self.latch.read();
        let leaf = self.find_leaf(key.as_bytes())?;
        let mut g = leaf.write();
        let idx = node::leaf_search(&g, key.as_bytes())
            .map_err(|_| Error::NotFound(format!("{key:?} in index {}", self.index_id.0)))?;
        let rec = node::slots(&g).get(idx);
        let rec_off = node::leaf_value_offset(key.len()) + region_off;
        if rec_off > rec.len() {
            return Err(Error::corruption("value region beyond record"));
        }
        let old_region = rec[rec_off..].to_vec();
        let new_region = f(&old_region)?;
        if new_region.len() != old_region.len() {
            return Err(Error::invalid(format!(
                "escrow patch must preserve length ({} -> {})",
                old_region.len(),
                new_region.len()
            )));
        }
        let redo = RedoOp::SlotPatch { idx: idx as u16, off: rec_off as u16, bytes: new_region };
        let inverse = RedoOp::SlotPatch { idx: idx as u16, off: rec_off as u16, bytes: old_region };
        Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
        Ok(())
    }

    /// Physically remove a record (ghost cleanup; caller holds the
    /// appropriate transaction locks and runs inside a system transaction).
    pub fn remove_record(&self, key: &Key, ctx: &mut LogCtx<'_>, how: &OpLog) -> Result<()> {
        let _t = self.latch.read();
        let leaf = self.find_leaf(key.as_bytes())?;
        let mut g = leaf.write();
        let idx = node::leaf_search(&g, key.as_bytes())
            .map_err(|_| Error::NotFound(format!("{key:?} in index {}", self.index_id.0)))?;
        let old_rec = node::slots(&g).get(idx).to_vec();
        let redo = RedoOp::SlotRemove { idx: idx as u16 };
        let inverse = RedoOp::SlotInsert { idx: idx as u16, bytes: old_rec };
        Self::apply_logged(&leaf, &mut g, redo, inverse, ctx, how)?;
        Ok(())
    }

    /// Range scan over `[lo, hi_exclusive)` (whole tree if `None`).
    /// Returns the matching items (ghosts included iff `include_ghosts`)
    /// plus the first key at-or-beyond the upper bound — the engine locks
    /// that key's gap (or the index end) to keep the range phantom-free.
    pub fn scan(
        &self,
        lo: Option<&Key>,
        hi_exclusive: Option<&Key>,
        include_ghosts: bool,
    ) -> Result<(Vec<ScanItem>, Option<Vec<u8>>)> {
        let _t = self.latch.read();
        let start = lo.map_or(&[][..], |k| k.as_bytes());
        let mut out = Vec::new();
        let mut first_leaf = true;
        let mut leaf = self.find_leaf(start)?;
        loop {
            let next_pid = {
                let g = leaf.read();
                let s = node::slots(&g);
                // Only the first leaf needs a search; later leaves start at 0.
                let begin = if first_leaf {
                    match node::leaf_search(&g, start) {
                        Ok(i) => i,
                        Err(i) => i,
                    }
                } else {
                    0
                };
                for i in begin..s.count() {
                    let rec = node::decode_leaf(s.get(i))?;
                    if let Some(hi) = hi_exclusive {
                        if rec.key >= hi.as_bytes() {
                            return Ok((out, Some(rec.key.to_vec())));
                        }
                    }
                    if rec.ghost && !include_ghosts {
                        continue;
                    }
                    out.push(ScanItem {
                        key: rec.key.to_vec(),
                        value: rec.value.to_vec(),
                        ghost: rec.ghost,
                    });
                }
                node::right_sibling(&g)
            };
            if next_pid.is_null() {
                return Ok((out, None));
            }
            first_leaf = false;
            leaf = self.pool.fetch(next_pid)?;
        }
    }

    /// First physical record with key `>= key` (for next-key locking on
    /// inserts). Returns `(key bytes, ghost)`.
    pub fn next_geq(&self, key: &Key) -> Result<Option<(Vec<u8>, bool)>> {
        let _t = self.latch.read();
        let mut leaf = self.find_leaf(key.as_bytes())?;
        loop {
            let next_pid = {
                let g = leaf.read();
                let s = node::slots(&g);
                let from = match node::leaf_search(&g, key.as_bytes()) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                if from < s.count() {
                    let rec = node::decode_leaf(s.get(from))?;
                    return Ok(Some((rec.key.to_vec(), rec.ghost)));
                }
                node::right_sibling(&g)
            };
            if next_pid.is_null() {
                return Ok(None);
            }
            leaf = self.pool.fetch(next_pid)?;
        }
    }

    /// Keys of up to `limit` ghost records (ghost-cleanup work list).
    pub fn collect_ghosts(&self, limit: usize) -> Result<Vec<Vec<u8>>> {
        let (items, _) = self.scan(None, None, true)?;
        Ok(items
            .into_iter()
            .filter(|i| i.ghost)
            .take(limit)
            .map(|i| i.key)
            .collect())
    }

    /// Number of live (non-ghost) records.
    pub fn live_count(&self) -> Result<usize> {
        Ok(self.scan(None, None, false)?.0.len())
    }

    /// Scan backwards: all items in `[lo, hi_exclusive)` in DESCENDING key
    /// order. Leaves have no left-sibling pointers, so this collects the
    /// forward scan and reverses — acceptable for the report-style queries
    /// that want "top groups last" semantics.
    pub fn scan_desc(
        &self,
        lo: Option<&Key>,
        hi_exclusive: Option<&Key>,
        include_ghosts: bool,
    ) -> Result<Vec<ScanItem>> {
        let (mut items, _) = self.scan(lo, hi_exclusive, include_ghosts)?;
        items.reverse();
        Ok(items)
    }

    /// Structural invariant checker (tests, crash-recovery audits):
    ///
    /// * every node's keys are strictly sorted;
    /// * interior separators bound their subtrees;
    /// * all leaves are at level 0 and reachable via the sibling chain in
    ///   the same order as by tree descent;
    /// * record encodings decode.
    ///
    /// Returns the number of physical records seen (ghosts included).
    pub fn validate(&self) -> Result<usize> {
        let _t = self.latch.read();
        let mut leaves_by_descent: Vec<PageId> = Vec::new();
        let mut total = 0usize;
        self.validate_node(self.root, None, None, &mut leaves_by_descent, &mut total)?;
        // Sibling chain must visit the same leaves in the same order.
        let mut chain = Vec::new();
        let mut pid = *leaves_by_descent.first().expect("at least the root leaf");
        loop {
            chain.push(pid);
            let page = self.pool.fetch(pid)?;
            let next = node::right_sibling(&page.read());
            if next.is_null() {
                break;
            }
            pid = next;
        }
        if chain != leaves_by_descent {
            return Err(Error::corruption(format!(
                "sibling chain {chain:?} != descent order {leaves_by_descent:?}"
            )));
        }
        Ok(total)
    }

    fn validate_node(
        &self,
        pid: PageId,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        leaves: &mut Vec<PageId>,
        total: &mut usize,
    ) -> Result<()> {
        let page = self.pool.fetch(pid)?;
        let g = page.read();
        let s = node::slots(&g);
        let lvl = node::level(&g);
        let mut prev_key: Option<Vec<u8>> = None;
        if lvl == 0 {
            leaves.push(pid);
            for i in 0..s.count() {
                let rec = node::decode_leaf(s.get(i))?;
                if let Some(p) = &prev_key {
                    if rec.key <= p.as_slice() {
                        return Err(Error::corruption(format!("unsorted leaf {pid:?} slot {i}")));
                    }
                }
                if let Some(lo) = lo {
                    if rec.key < lo {
                        return Err(Error::corruption(format!("leaf {pid:?} underflows low fence")));
                    }
                }
                if let Some(hi) = hi {
                    if rec.key >= hi {
                        return Err(Error::corruption(format!("leaf {pid:?} overflows high fence")));
                    }
                }
                prev_key = Some(rec.key.to_vec());
                *total += 1;
            }
            return Ok(());
        }
        // Interior: separators strictly sorted; child i bounded by
        // [sep_i, sep_{i+1}).
        let mut entries = Vec::with_capacity(s.count());
        for i in 0..s.count() {
            let (sep, child) = node::decode_interior(s.get(i))?;
            if let Some(p) = &prev_key {
                if sep <= p.as_slice() {
                    return Err(Error::corruption(format!("unsorted interior {pid:?} slot {i}")));
                }
            }
            prev_key = Some(sep.to_vec());
            entries.push((sep.to_vec(), child));
        }
        drop(g);
        for (i, (sep, child)) in entries.iter().enumerate() {
            let child_lo: Option<&[u8]> = if i == 0 { lo } else { Some(sep.as_slice()) };
            let next_sep = entries.get(i + 1).map(|(s, _)| s.as_slice());
            let child_hi = next_sep.or(hi);
            // Verify the child level decreases by exactly one.
            let cp = self.pool.fetch(*child)?;
            let child_level = node::level(&cp.read());
            drop(cp);
            if child_level + 1 != lvl {
                return Err(Error::corruption(format!(
                    "level skew: node {pid:?} level {lvl}, child {child:?} level {child_level}"
                )));
            }
            self.validate_node(*child, child_lo, child_hi, leaves, total)?;
        }
        Ok(())
    }

    /// Tree height (1 = root is a leaf).
    pub fn depth(&self) -> Result<usize> {
        let _t = self.latch.read();
        let g = self.pool.fetch(self.root)?;
        let lvl = node::level(&g.read());
        Ok(lvl as usize + 1)
    }

    // ---- structure modifications (system transactions) ------------------

    /// Ensure the leaf owning `key` has at least `needed` free bytes,
    /// splitting nodes top-down as required. Runs as a system transaction
    /// under the exclusive tree latch.
    fn split_for(&self, key: &[u8], needed: usize, log: &LogManager) -> Result<()> {
        let _t = self.latch.write();
        let sys = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn: sys, last_lsn: &mut last };
        ctx.append(RecordBody::Begin { kind: TxnKind::System });
        let mut did_work = false;

        // Top-down: split any node on the path that might not have room.
        let mut parent: Option<(PinnedPage, usize)> = None;
        let mut page = self.pool.fetch(self.root)?;
        loop {
            let (lvl, free) = {
                let g = page.read();
                (node::level(&g), node::slots(&g).free_space())
            };
            let reserve = if lvl == 0 { needed } else { SEP_RESERVE };
            if free < reserve {
                did_work = true;
                if page.id() == self.root {
                    self.pushdown_root(&page, &mut ctx)?;
                    // Restart descent from the (now interior) root.
                    parent = None;
                    page = self.pool.fetch(self.root)?;
                    continue;
                } else {
                    let (ppage, pidx) = parent.as_ref().expect("non-root has a parent");
                    self.split_node(&page, ppage, *pidx, &mut ctx)?;
                    // Restart descent: the key may now route differently.
                    parent = None;
                    page = self.pool.fetch(self.root)?;
                    continue;
                }
            }
            if lvl == 0 {
                break;
            }
            let (idx, child) = {
                let g = page.read();
                node::interior_route(&g, key)?
            };
            parent = Some((page, idx));
            page = self.pool.fetch(child)?;
        }

        if did_work {
            let commit = ctx.append(RecordBody::Commit);
            ctx.append(RecordBody::End);
            let _ = commit;
        } else {
            // Nothing split (another thread got here first): empty txn.
            ctx.append(RecordBody::Commit);
            ctx.append(RecordBody::End);
        }
        Ok(())
    }

    /// Root push-down: move the root's records into two fresh children and
    /// turn the root into a 2-entry interior node one level up.
    fn pushdown_root(&self, root: &PinnedPage, ctx: &mut LogCtx<'_>) -> Result<()> {
        let (lvl, records) = {
            let g = root.read();
            let s = node::slots(&g);
            let recs: Vec<Vec<u8>> = (0..s.count()).map(|i| s.get(i).to_vec()).collect();
            (node::level(&g), recs)
        };
        let n = records.len();
        let split = n / 2;
        let (left_pid, left) = self.new_node(lvl, ctx)?;
        let (right_pid, right) = self.new_node(lvl, ctx)?;

        {
            let mut lg = left.write();
            for (i, rec) in records[..split].iter().enumerate() {
                Self::apply_logged(
                    &left,
                    &mut lg,
                    RedoOp::SlotInsert { idx: i as u16, bytes: rec.clone() },
                    RedoOp::SlotRemove { idx: i as u16 },
                    ctx,
                    &OpLog::System,
                )?;
            }
            if lvl == 0 {
                let (redo, inverse) = node::right_sibling_patch(&lg, right_pid);
                Self::apply_logged(&left, &mut lg, redo, inverse, ctx, &OpLog::System)?;
            }
        }
        {
            let mut rg = right.write();
            for (i, rec) in records[split..].iter().enumerate() {
                Self::apply_logged(
                    &right,
                    &mut rg,
                    RedoOp::SlotInsert { idx: i as u16, bytes: rec.clone() },
                    RedoOp::SlotRemove { idx: i as u16 },
                    ctx,
                    &OpLog::System,
                )?;
            }
            // Root had no right sibling; the new right child inherits NULL.
        }

        // Separator = key of the first record moving right.
        let sep = if lvl == 0 {
            node::decode_leaf(&records[split])?.key.to_vec()
        } else {
            node::decode_interior(&records[split])?.0.to_vec()
        };

        // Empty the root (reverse order keeps inverse ops exact).
        {
            let mut g = root.write();
            for i in (0..n).rev() {
                Self::apply_logged(
                    root,
                    &mut g,
                    RedoOp::SlotRemove { idx: i as u16 },
                    RedoOp::SlotInsert { idx: i as u16, bytes: records[i].clone() },
                    ctx,
                    &OpLog::System,
                )?;
            }
            let (redo, inverse) = node::level_patch(&g, lvl + 1);
            Self::apply_logged(root, &mut g, redo, inverse, ctx, &OpLog::System)?;
            Self::apply_logged(
                root,
                &mut g,
                RedoOp::SlotInsert { idx: 0, bytes: node::encode_interior(&[], left_pid) },
                RedoOp::SlotRemove { idx: 0 },
                ctx,
                &OpLog::System,
            )?;
            Self::apply_logged(
                root,
                &mut g,
                RedoOp::SlotInsert { idx: 1, bytes: node::encode_interior(&sep, right_pid) },
                RedoOp::SlotRemove { idx: 1 },
                ctx,
                &OpLog::System,
            )?;
        }
        Ok(())
    }

    /// Split a non-root node, inserting the new separator into its parent
    /// (which is guaranteed to have room by the top-down policy).
    fn split_node(&self, page: &PinnedPage, parent: &PinnedPage, pidx: usize, ctx: &mut LogCtx<'_>) -> Result<()> {
        let (lvl, records, old_right) = {
            let g = page.read();
            let s = node::slots(&g);
            let recs: Vec<Vec<u8>> = (0..s.count()).map(|i| s.get(i).to_vec()).collect();
            (node::level(&g), recs, node::right_sibling(&g))
        };
        let n = records.len();
        let split = n / 2;
        let (new_pid, new_page) = self.new_node(lvl, ctx)?;

        // Copy the upper half into the new node.
        {
            let mut ng = new_page.write();
            for (i, rec) in records[split..].iter().enumerate() {
                Self::apply_logged(
                    &new_page,
                    &mut ng,
                    RedoOp::SlotInsert { idx: i as u16, bytes: rec.clone() },
                    RedoOp::SlotRemove { idx: i as u16 },
                    ctx,
                    &OpLog::System,
                )?;
            }
            if lvl == 0 {
                let (redo, inverse) = node::right_sibling_patch(&ng, old_right);
                Self::apply_logged(&new_page, &mut ng, redo, inverse, ctx, &OpLog::System)?;
            }
        }
        // Remove the upper half from the old node; relink siblings.
        {
            let mut g = page.write();
            for i in (split..n).rev() {
                Self::apply_logged(
                    page,
                    &mut g,
                    RedoOp::SlotRemove { idx: i as u16 },
                    RedoOp::SlotInsert { idx: i as u16, bytes: records[i].clone() },
                    ctx,
                    &OpLog::System,
                )?;
            }
            if lvl == 0 {
                let (redo, inverse) = node::right_sibling_patch(&g, new_pid);
                Self::apply_logged(page, &mut g, redo, inverse, ctx, &OpLog::System)?;
            }
        }
        // Insert the separator into the parent after the old child's entry.
        let sep = if lvl == 0 {
            node::decode_leaf(&records[split])?.key.to_vec()
        } else {
            node::decode_interior(&records[split])?.0.to_vec()
        };
        {
            let mut pg = parent.write();
            Self::apply_logged(
                parent,
                &mut pg,
                RedoOp::SlotInsert {
                    idx: (pidx + 1) as u16,
                    bytes: node::encode_interior(&sep, new_pid),
                },
                RedoOp::SlotRemove { idx: (pidx + 1) as u16 },
                ctx,
                &OpLog::System,
            )?;
        }
        Ok(())
    }

    /// Allocate and format a new node inside the current system txn.
    fn new_node(&self, lvl: u8, ctx: &mut LogCtx<'_>) -> Result<(PageId, PinnedPage)> {
        let ty = if lvl == 0 { PageType::BTreeLeaf } else { PageType::BTreeInterior };
        let (pid, page) = self.pool.new_page(ty)?;
        let mut g = page.write();
        let fmt = RedoOp::FormatPage {
            ty: if lvl == 0 { 2 } else { 3 },
            header_len: PAYLOAD_HEADER_LEN as u16,
        };
        fmt.apply(g.payload_mut(), PAYLOAD_HEADER_LEN)?;
        node::init_header(&mut g, lvl, PageId::NULL);
        let lsn = ctx.log_op(
            pid,
            fmt,
            RedoOp::FormatPage { ty: 0, header_len: PAYLOAD_HEADER_LEN as u16 },
            &OpLog::System,
        );
        let hdr = RedoOp::Patch { off: 0, bytes: g.payload()[..PAYLOAD_HEADER_LEN].to_vec() };
        let lsn2 = ctx.log_op(pid, hdr.clone(), hdr, &OpLog::System);
        let _ = lsn;
        g.set_lsn(lsn2);
        drop(g);
        Ok((pid, page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::rng::Rng;
    use txview_common::Value;
    use txview_storage::disk::MemDisk;

    fn setup() -> (Arc<LogManager>, Arc<BufferPool>, Tree) {
        let log = Arc::new(LogManager::in_memory());
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
        let l2 = Arc::clone(&log);
        pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
        let tree = Tree::create(&pool, &log, IndexId(1)).unwrap();
        (log, pool, tree)
    }

    fn k(v: i64) -> Key {
        Key::from_values(&[Value::Int(v)])
    }

    fn user_insert(tree: &Tree, log: &LogManager, key: &Key, val: &[u8]) {
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log, txn, last_lsn: &mut last };
        tree.insert(key, val, &mut ctx, &OpLog::Update { undo: UndoOp::None }).unwrap();
    }

    #[test]
    fn insert_get_small() {
        let (log, _pool, tree) = setup();
        for i in [5i64, 1, 9, 3] {
            user_insert(&tree, &log, &k(i), format!("v{i}").as_bytes());
        }
        assert_eq!(tree.get(&k(3)).unwrap(), Some((false, b"v3".to_vec())));
        assert_eq!(tree.get(&k(4)).unwrap(), None);
        assert_eq!(tree.live_count().unwrap(), 4);
        assert_eq!(tree.depth().unwrap(), 1);
    }

    #[test]
    fn duplicate_rejected_ghost_revived() {
        let (log, _pool, tree) = setup();
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        let how = OpLog::Update { undo: UndoOp::None };
        tree.insert(&k(1), b"a", &mut ctx, &how).unwrap();
        assert!(matches!(
            tree.insert(&k(1), b"b", &mut ctx, &how),
            Err(Error::DuplicateKey(_))
        ));
        // Ghost it, then re-insert revives with the new value.
        let old = tree.set_ghost(&k(1), true, &mut ctx, &how).unwrap();
        assert_eq!(old, b"a");
        assert_eq!(tree.get(&k(1)).unwrap(), Some((true, b"a".to_vec())));
        tree.insert(&k(1), b"b", &mut ctx, &how).unwrap();
        assert_eq!(tree.get(&k(1)).unwrap(), Some((false, b"b".to_vec())));
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let (log, _pool, tree) = setup();
        let mut rng = Rng::new(42);
        let mut keys: Vec<i64> = (0..2000).collect();
        rng.shuffle(&mut keys);
        for i in &keys {
            user_insert(&tree, &log, &k(*i), format!("value-{i:05}").as_bytes());
        }
        assert!(tree.depth().unwrap() >= 2, "tree must have split");
        let (items, next) = tree.scan(None, None, false).unwrap();
        assert_eq!(items.len(), 2000);
        assert!(next.is_none());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.key, k(i as i64).as_bytes());
            assert_eq!(item.value, format!("value-{i:05}").as_bytes());
        }
    }

    #[test]
    fn range_scan_bounds_and_next_key() {
        let (log, _pool, tree) = setup();
        for i in 0..100 {
            user_insert(&tree, &log, &k(i * 2), b"v"); // even keys 0..198
        }
        let (items, next) = tree.scan(Some(&k(10)), Some(&k(20)), false).unwrap();
        let got: Vec<Vec<u8>> = items.iter().map(|i| i.key.clone()).collect();
        assert_eq!(
            got,
            vec![k(10).as_bytes().to_vec(), k(12).as_bytes().to_vec(),
                 k(14).as_bytes().to_vec(), k(16).as_bytes().to_vec(),
                 k(18).as_bytes().to_vec()]
        );
        assert_eq!(next, Some(k(20).as_bytes().to_vec()));
        // Open-ended scan reaches the end of the index.
        let (_, next) = tree.scan(Some(&k(190)), None, false).unwrap();
        assert_eq!(next, None);
    }

    #[test]
    fn next_geq_walks_across_leaves() {
        let (log, _pool, tree) = setup();
        for i in 0..500 {
            user_insert(&tree, &log, &k(i * 10), b"0123456789abcdef");
        }
        assert_eq!(tree.next_geq(&k(55)).unwrap().unwrap().0, k(60).as_bytes());
        assert_eq!(tree.next_geq(&k(0)).unwrap().unwrap().0, k(0).as_bytes());
        assert_eq!(tree.next_geq(&k(4991)).unwrap(), None);
    }

    #[test]
    fn modify_value_region_patches_in_place() {
        let (log, _pool, tree) = setup();
        user_insert(&tree, &log, &k(7), b"AAAABBBB");
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        tree.modify_value_region(
            &k(7),
            4,
            |old| {
                assert_eq!(old, b"BBBB");
                Ok(b"CCCC".to_vec())
            },
            &mut ctx,
            &OpLog::Update { undo: UndoOp::None },
        )
        .unwrap();
        assert_eq!(tree.get(&k(7)).unwrap(), Some((false, b"AAAACCCC".to_vec())));
        // Length changes are rejected.
        let err = tree.modify_value_region(&k(7), 4, |_| Ok(vec![1]), &mut ctx, &OpLog::None);
        assert!(err.is_err());
    }

    #[test]
    fn remove_record_physically_deletes() {
        let (log, _pool, tree) = setup();
        user_insert(&tree, &log, &k(1), b"x");
        user_insert(&tree, &log, &k(2), b"y");
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        tree.set_ghost(&k(1), true, &mut ctx, &OpLog::None).unwrap();
        assert_eq!(tree.collect_ghosts(10).unwrap().len(), 1);
        tree.remove_record(&k(1), &mut ctx, &OpLog::None).unwrap();
        assert_eq!(tree.get(&k(1)).unwrap(), None);
        assert_eq!(tree.collect_ghosts(10).unwrap().len(), 0);
        assert_eq!(tree.live_count().unwrap(), 1);
    }

    #[test]
    fn ghosts_visible_only_when_requested() {
        let (log, _pool, tree) = setup();
        for i in 0..10 {
            user_insert(&tree, &log, &k(i), b"v");
        }
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        tree.set_ghost(&k(4), true, &mut ctx, &OpLog::None).unwrap();
        let (live, _) = tree.scan(None, None, false).unwrap();
        assert_eq!(live.len(), 9);
        let (all, _) = tree.scan(None, None, true).unwrap();
        assert_eq!(all.len(), 10);
        assert!(all[4].ghost);
    }

    #[test]
    fn concurrent_inserts_disjoint_keys() {
        let (log, pool, tree) = setup();
        let tree = Arc::new(tree);
        let _ = pool;
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = k((t * 10_000 + i) as i64);
                        let txn = log.alloc_txn_id();
                        let mut last = Lsn::NULL;
                        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
                        tree.insert(&key, b"concurrent-value", &mut ctx, &OpLog::Update { undo: UndoOp::None })
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.live_count().unwrap(), 2000);
        // All keys present and ordered.
        let (items, _) = tree.scan(None, None, false).unwrap();
        for w in items.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn big_records_rejected() {
        let (log, _pool, tree) = setup();
        let txn = log.alloc_txn_id();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn, last_lsn: &mut last };
        let huge = vec![0u8; 4000];
        assert!(matches!(
            tree.insert(&k(1), &huge, &mut ctx, &OpLog::None),
            Err(Error::RecordTooLarge { .. })
        ));
    }
}
