//! Logging context passed into every mutating B-tree operation.
//!
//! The tree performs the page change and asks the context to describe how
//! it must be logged:
//!
//! * [`OpLog::Update`] — a forward user-transaction operation carrying a
//!   *logical* undo descriptor (the engine supplies it: ghost-the-key,
//!   inverse escrow delta, ...);
//! * [`OpLog::Clr`] — the operation *is* an undo step; it is logged as a
//!   redo-only compensation record chaining `undo_next`;
//! * [`OpLog::System`] — part of a system transaction; the tree supplies a
//!   *physical* inverse so an in-flight crash can back it out;
//! * [`OpLog::None`] — unlogged (catalog bootstrap before the log exists).

use txview_common::{Lsn, PageId, TxnId};
use txview_wal::record::{RecordBody, RedoOp, UndoOp};
use txview_wal::LogManager;

/// How one physical page operation should be logged.
#[derive(Clone, Debug)]
pub enum OpLog {
    /// Forward operation of a user transaction with its logical undo.
    Update {
        /// The logical undo descriptor to log with the operation.
        undo: UndoOp,
    },
    /// Compensation (undo step): redo-only, points at the next undo.
    Clr {
        /// Where undo continues after this compensation.
        undo_next: Lsn,
    },
    /// System-transaction operation; physical inverse derived by the tree.
    System,
    /// Not logged.
    None,
}

/// Per-transaction logging handle: appends records, maintaining the
/// back-chain (`prev_lsn`) through `last_lsn`.
pub struct LogCtx<'a> {
    /// The log manager to append to.
    pub log: &'a LogManager,
    /// The owning transaction.
    pub txn: TxnId,
    /// The transaction's previous record LSN (updated on every append).
    pub last_lsn: &'a mut Lsn,
}

impl LogCtx<'_> {
    /// Append `body` for this transaction, advancing the back-chain.
    pub fn append(&mut self, body: RecordBody) -> Lsn {
        let lsn = self.log.append(self.txn, *self.last_lsn, body);
        *self.last_lsn = lsn;
        lsn
    }

    /// Log one physical page operation according to `how`; returns the LSN
    /// to stamp on the page (null when unlogged).
    pub fn log_op(&mut self, page: PageId, redo: RedoOp, inverse: RedoOp, how: &OpLog) -> Lsn {
        match how {
            OpLog::Update { undo } => self.append(RecordBody::Update {
                page,
                redo,
                undo: undo.clone(),
            }),
            OpLog::Clr { undo_next } => self.append(RecordBody::Clr {
                page,
                redo,
                undo_next: *undo_next,
            }),
            OpLog::System => self.append(RecordBody::Update {
                page,
                redo,
                undo: UndoOp::Page { page, op: inverse },
            }),
            OpLog::None => Lsn::NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_wal::record::TxnKind;

    #[test]
    fn append_chains_prev_lsn() {
        let log = LogManager::in_memory();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn: TxnId(1), last_lsn: &mut last };
        let a = ctx.append(RecordBody::Begin { kind: TxnKind::User });
        let b = ctx.append(RecordBody::Commit);
        log.flush_all().unwrap();
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs[0].1.lsn, a);
        assert_eq!(recs[1].1.prev_lsn, a);
        assert_eq!(recs[1].1.lsn, b);
        assert_eq!(last, b);
    }

    #[test]
    fn log_op_variants() {
        let log = LogManager::in_memory();
        let mut last = Lsn::NULL;
        let mut ctx = LogCtx { log: &log, txn: TxnId(1), last_lsn: &mut last };
        let redo = RedoOp::SlotRemove { idx: 0 };
        let inv = RedoOp::SlotInsert { idx: 0, bytes: vec![1] };
        let l1 = ctx.log_op(PageId(1), redo.clone(), inv.clone(), &OpLog::Update { undo: UndoOp::None });
        assert!(!l1.is_null());
        let l2 = ctx.log_op(PageId(1), redo.clone(), inv.clone(), &OpLog::System);
        assert!(l2 > l1);
        let l3 = ctx.log_op(PageId(1), redo.clone(), inv.clone(), &OpLog::Clr { undo_next: l1 });
        assert!(l3 > l2);
        let l4 = ctx.log_op(PageId(1), redo, inv, &OpLog::None);
        assert!(l4.is_null());
        log.flush_all().unwrap();
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(matches!(
            recs[1].1.body,
            RecordBody::Update { undo: UndoOp::Page { .. }, .. }
        ));
        assert!(matches!(recs[2].1.body, RecordBody::Clr { .. }));
    }
}
