//! # txview-btree
//!
//! A page-based B+ tree with the features the reproduced paper's protocol
//! needs from its index substrate:
//!
//! * **ghost records** — deletion marks a record as a ghost (one-byte flag,
//!   logged as a tiny in-place patch); rollback resurrects it; a later
//!   system transaction removes it physically ([`tree::Tree::cleanup_ghosts`]);
//! * **in-place value patches** — escrow increments are applied under the
//!   leaf latch as a read-modify-write of the record's aggregate region and
//!   logged as a physiological `SlotPatch` (result image ⇒ idempotent redo);
//! * **structure modifications as system transactions** — splits run in
//!   their own redo-logged transaction with physical inverses, committing
//!   immediately; a user rollback never un-splits a page;
//! * **fixed root page** — the root page id never changes (the root "splits"
//!   by pushing its contents down), so the catalog entry for an index is
//!   immutable after DDL;
//! * **key-range support** — range scans return the *next* key after the
//!   range so the engine can take next-key (gap) locks against phantoms.
//!
//! Latching protocol: a tree-level `RwLock` is held shared by all single-
//! record operations and scans (interior nodes and sibling pointers are
//! therefore stable), and exclusively during structure modifications. Page
//! frames are additionally latched for the actual byte access. Transaction
//! locks are a different layer entirely (`txview-lock`) and are taken by
//! the engine *before* calling into this crate.

pub mod logctx;
pub mod node;
pub mod tree;

pub use logctx::{LogCtx, OpLog};
pub use node::{LeafRecord, MAX_RECORD_BYTES};
pub use tree::{ScanItem, Tree};
