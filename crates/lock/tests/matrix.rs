//! Spec-vs-impl check for the lock mode tables.
//!
//! The compatibility matrix and the conversion-supremum table below are
//! transcribed **literally from the paper's protocol description** (the
//! hierarchical matrix of Gray et al. extended with the escrow mode E:
//! E∥E, E∥IS, E∥IX, E∦S/U/X/SIX; an incrementer that must read or
//! overwrite converts to X). The implementation in `lock::mode` encodes
//! the same tables in code; this test holds the two transcriptions against
//! each other entry by entry, so neither can drift without failing.

use proptest::prelude::*;
use txview_lock::LockMode;
use LockMode::{E, IS, IX, S, SIX, U, X};

const ALL: [LockMode; 7] = [IS, IX, S, SIX, U, X, E];

/// The paper's compatibility matrix, row = held, column = requested.
/// Order: IS, IX, S, SIX, U, X, E.
#[rustfmt::skip]
const SPEC_COMPAT: [[bool; 7]; 7] = [
    //           IS     IX     S      SIX    U      X      E
    /* IS  */ [ true,  true,  true,  true,  true,  false, true  ],
    /* IX  */ [ true,  true,  false, false, false, false, true  ],
    /* S   */ [ true,  false, true,  false, true,  false, false ],
    /* SIX */ [ true,  false, false, false, false, false, false ],
    /* U   */ [ true,  false, true,  false, false, false, false ],
    /* X   */ [ false, false, false, false, false, false, false ],
    /* E   */ [ true,  true,  false, false, false, false, true  ],
];

/// The paper's conversion lattice: the weakest single mode granting the
/// rights of both. Same row/column order as above.
#[rustfmt::skip]
const SPEC_SUP: [[LockMode; 7]; 7] = [
    //           IS   IX   S    SIX  U    X   E
    /* IS  */ [ IS,  IX,  S,   SIX, U,   X,  E ],
    /* IX  */ [ IX,  IX,  SIX, SIX, SIX, X,  E ],
    /* S   */ [ S,   SIX, S,   SIX, U,   X,  X ],
    /* SIX */ [ SIX, SIX, SIX, SIX, SIX, X,  X ],
    /* U   */ [ U,   SIX, U,   SIX, U,   X,  X ],
    /* X   */ [ X,   X,   X,   X,   X,   X,  X ],
    /* E   */ [ E,   E,   X,   X,   X,   X,  E ],
];

#[test]
fn compat_matrix_matches_spec_entry_by_entry() {
    for (i, &a) in ALL.iter().enumerate() {
        for (j, &b) in ALL.iter().enumerate() {
            assert_eq!(
                a.compatible(b),
                SPEC_COMPAT[i][j],
                "compatible({a}, {b}) disagrees with the transcribed matrix"
            );
        }
    }
}

#[test]
fn sup_table_matches_spec_entry_by_entry() {
    for (i, &a) in ALL.iter().enumerate() {
        for (j, &b) in ALL.iter().enumerate() {
            assert_eq!(
                a.sup(b),
                SPEC_SUP[i][j],
                "sup({a}, {b}) disagrees with the transcribed table"
            );
        }
    }
}

#[test]
fn spec_matrix_is_symmetric() {
    // The transcription itself must be sane: compatibility is symmetric.
    for i in 0..7 {
        for j in 0..7 {
            assert_eq!(SPEC_COMPAT[i][j], SPEC_COMPAT[j][i], "spec matrix asymmetry at {i},{j}");
        }
    }
}

fn arb_mode() -> impl Strategy<Value = LockMode> {
    prop::sample::select(ALL.to_vec())
}

proptest! {
    /// The supremum must grant both inputs' rights: anything incompatible
    /// with `a` or with `b` is incompatible with `sup(a, b)`.
    #[test]
    fn sup_upper_bound_against_spec(a in arb_mode(), b in arb_mode(), c in arb_mode()) {
        let idx = |m: LockMode| ALL.iter().position(|&x| x == m).unwrap();
        let s = SPEC_SUP[idx(a)][idx(b)];
        if !SPEC_COMPAT[idx(a)][idx(c)] || !SPEC_COMPAT[idx(b)][idx(c)] {
            prop_assert!(
                !SPEC_COMPAT[idx(s)][idx(c)],
                "sup({a},{b})={s} is compatible with {c}, but an input is not"
            );
        }
    }

    /// covers() must agree with the spec supremum: `a` covers `b` iff the
    /// spec says their join is `a` itself.
    #[test]
    fn covers_agrees_with_spec(a in arb_mode(), b in arb_mode()) {
        let idx = |m: LockMode| ALL.iter().position(|&x| x == m).unwrap();
        prop_assert_eq!(a.covers(b), SPEC_SUP[idx(a)][idx(b)] == a);
    }

    /// E admits concurrent incrementers but no concurrent readers: for any
    /// mode `m`, E∥m iff m is E or an intent mode.
    #[test]
    fn escrow_concurrency_boundary(m in arb_mode()) {
        let expected = matches!(m, E | IS | IX);
        prop_assert_eq!(E.compatible(m), expected, "E vs {}", m);
    }
}
