//! The lock manager: sharded lock table, FIFO-fair wait queues with
//! conversion priority, waits-for deadlock detection, and statistics.
//!
//! Deadlock policy: detection happens at block time. If enqueueing this
//! request closes a cycle in the waits-for graph, the *requester* aborts
//! with [`txview_common::Error::DeadlockVictim`] (immediate
//! detection, "requester dies"). The E2 experiment counts these.
//!
//! Lock ordering inside the manager: shard mutex → waits-for mutex →
//! registry mutex. Wait cells are only touched outside or after those.

use crate::hook::{SchedEvent, SchedHook};
use crate::mode::LockMode;
use crate::name::LockName;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::obs::{Histogram, ObsClock, Snapshot};
use txview_common::{Error, Result, TxnId};

const SHARDS: usize = 64;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaitState {
    Waiting,
    Granted,
}

struct WaitCell {
    state: Mutex<WaitState>,
    cv: Condvar,
}

struct Waiter {
    txn: TxnId,
    target: LockMode,
    converting: bool,
    cell: Arc<WaitCell>,
}

#[derive(Default)]
struct LockHead {
    holders: Vec<(TxnId, LockMode)>,
    queue: Vec<Waiter>,
}

#[derive(Default)]
struct Shard {
    table: HashMap<LockName, LockHead>,
}

/// Counters exposed to the experiment harness.
#[derive(Default)]
pub struct LockStats {
    /// Granted requests (including instant grants and conversions).
    pub acquired: AtomicU64,
    /// Requests that had to block.
    pub waited: AtomicU64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: AtomicU64,
    /// Requests aborted by timeout.
    pub timeouts: AtomicU64,
    /// Grants of mode E (escrow) — the paper's fast path.
    pub escrow_grants: AtomicU64,
}

/// Latency/depth instrumentation of the lock protocol (the contention
/// picture behind the E1/E2 throughput numbers): per-mode wait latency,
/// hold time from grant to release, and queue depth observed at enqueue.
/// All recording is relaxed-atomic; the wait histograms are touched only
/// on the slow (blocking) path.
#[derive(Default)]
pub struct LockObs {
    /// Shared observability clock (switchable to deterministic ticks).
    pub clock: ObsClock,
    /// Wait latency of blocked E (escrow) requests.
    pub wait_e_us: Histogram,
    /// Wait latency of blocked X requests.
    pub wait_x_us: Histogram,
    /// Wait latency of blocked requests in any other mode (S, intents).
    pub wait_other_us: Histogram,
    /// Grant-to-release hold time, all modes.
    pub hold_us: Histogram,
    /// Queue depth seen by an E request at enqueue time.
    pub queue_depth_e: Histogram,
    /// Queue depth seen by an X request at enqueue time.
    pub queue_depth_x: Histogram,
}

impl LockObs {
    fn wait_hist(&self, mode: LockMode) -> &Histogram {
        match mode {
            LockMode::E => &self.wait_e_us,
            LockMode::X => &self.wait_x_us,
            _ => &self.wait_other_us,
        }
    }
}

/// A point-in-time copy of [`LockStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStatsSnapshot {
    /// Granted requests.
    pub acquired: u64,
    /// Requests that blocked before being granted.
    pub waited: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Escrow grants.
    pub escrow_grants: u64,
}

/// The lock manager. Shareable via `Arc`.
pub struct LockManager {
    shards: Box<[Mutex<Shard>]>,
    /// txn → names it holds (with grant time), in acquisition order (for
    /// release_all). A `Vec` rather than a set so release order — and
    /// therefore queue pumping and grant order — is deterministic under
    /// the interleaving explorer's replay.
    registry: Mutex<HashMap<TxnId, Vec<(LockName, u64)>>>,
    /// txn → txns it currently waits for.
    waits: Mutex<HashMap<TxnId, HashSet<TxnId>>>,
    timeout: Duration,
    stats: LockStats,
    obs: LockObs,
    /// Scheduler hook for the interleaving explorer; `None` in production.
    hook: RwLock<Option<Arc<dyn SchedHook>>>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(10))
    }
}

impl LockManager {
    /// Create a manager with the given lock-wait timeout.
    pub fn new(timeout: Duration) -> LockManager {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect::<Vec<_>>();
        LockManager {
            shards: shards.into_boxed_slice(),
            registry: Mutex::new(HashMap::new()),
            waits: Mutex::new(HashMap::new()),
            timeout,
            stats: LockStats::default(),
            obs: LockObs::default(),
            hook: RwLock::new(None),
        }
    }

    /// Latency/depth instrumentation (histograms are live; snapshot them).
    pub fn obs(&self) -> &LockObs {
        &self.obs
    }

    /// Named metrics snapshot of this layer (`lock.*`).
    pub fn obs_snapshot(&self) -> Snapshot {
        let s = self.stats();
        let mut out = Snapshot::default();
        out.counter("lock.acquired", s.acquired)
            .counter("lock.waited", s.waited)
            .counter("lock.deadlock_victims", s.deadlocks)
            .counter("lock.timeouts", s.timeouts)
            .counter("lock.escrow_grants", s.escrow_grants)
            .hist("lock.wait_us.e", self.obs.wait_e_us.snapshot())
            .hist("lock.wait_us.x", self.obs.wait_x_us.snapshot())
            .hist("lock.wait_us.other", self.obs.wait_other_us.snapshot())
            .hist("lock.hold_us", self.obs.hold_us.snapshot())
            .hist("lock.queue_depth.e", self.obs.queue_depth_e.snapshot())
            .hist("lock.queue_depth.x", self.obs.queue_depth_x.snapshot());
        out.sort();
        out
    }

    /// Install (or clear) the scheduler hook. Test-only seam: the
    /// interleaving explorer installs its virtual scheduler here; the
    /// transaction manager and engine reach it through [`LockManager::hook`].
    pub fn set_hook(&self, hook: Option<Arc<dyn SchedHook>>) {
        *self.hook.write() = hook;
    }

    /// The currently installed scheduler hook, if any.
    pub fn hook(&self) -> Option<Arc<dyn SchedHook>> {
        self.hook.read().clone()
    }

    fn shard_for(&self, name: &LockName) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquired: self.stats.acquired.load(Ordering::Relaxed),
            waited: self.stats.waited.load(Ordering::Relaxed),
            deadlocks: self.stats.deadlocks.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            escrow_grants: self.stats.escrow_grants.load(Ordering::Relaxed),
        }
    }

    /// The mode `txn` currently holds on `name`, if any.
    pub fn held_mode(&self, txn: TxnId, name: &LockName) -> Option<LockMode> {
        let shard = self.shard_for(name).lock();
        shard
            .table
            .get(name)
            .and_then(|h| h.holders.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m))
    }

    /// Acquire `mode` on `name` for `txn`, blocking if necessary.
    ///
    /// Re-requests are absorbed (covered by the held mode) or treated as
    /// conversions (held ∨ requested), which take priority over the queue.
    pub fn acquire(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<()> {
        let hook = self.hook();
        if let Some(h) = &hook {
            h.yield_point(txn, &SchedEvent::LockRequest { name: name.clone(), mode });
        }
        /// What the shard-locked section decided; hook calls happen after.
        enum Outcome {
            Granted { target: LockMode, converting: bool },
            Victim,
            Wait { target: LockMode, converting: bool, cell: Arc<WaitCell> },
        }
        let outcome = {
            let mut shard = self.shard_for(&name).lock();
            let head = shard.table.entry(name.clone()).or_default();
            let held = head.holders.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m);
            let covered = held.is_some_and(|h| h.covers(mode));
            let target = held.map_or(mode, |h| h.sup(mode));
            let converting = held.is_some() && !covered;
            if covered {
                Outcome::Granted { target, converting: false }
            } else if Self::grantable(head, txn, target, converting, usize::MAX) {
                Self::set_holder(head, txn, target);
                self.note_grant(txn, &name, target);
                Outcome::Granted { target, converting }
            } else {
                // Must wait. Enqueue (conversions jump the queue).
                self.stats.waited.fetch_add(1, Ordering::Relaxed);
                match target {
                    LockMode::E => self.obs.queue_depth_e.record(head.queue.len() as u64),
                    LockMode::X => self.obs.queue_depth_x.record(head.queue.len() as u64),
                    _ => {}
                }
                let cell =
                    Arc::new(WaitCell { state: Mutex::new(WaitState::Waiting), cv: Condvar::new() });
                let waiter = Waiter { txn, target, converting, cell: Arc::clone(&cell) };
                if converting {
                    head.queue.insert(0, waiter);
                } else {
                    head.queue.push(waiter);
                }
                // Build waits-for edges and check for a cycle.
                let blockers = Self::blockers_of(head, txn, target, converting);
                let mut waits = self.waits.lock();
                waits.insert(txn, blockers);
                if Self::has_cycle(&waits, txn) {
                    waits.remove(&txn);
                    drop(waits);
                    head.queue.retain(|w| w.txn != txn);
                    self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                    Outcome::Victim
                } else {
                    Outcome::Wait { target, converting, cell }
                }
            }
        };

        let (target, converting, cell) = match outcome {
            Outcome::Granted { target, converting } => {
                if let Some(h) = &hook {
                    h.observe(
                        txn,
                        &SchedEvent::LockGranted { name: name.clone(), mode: target, converting },
                    );
                }
                return Ok(());
            }
            Outcome::Victim => {
                if let Some(h) = &hook {
                    h.observe(txn, &SchedEvent::DeadlockVictim { name: name.clone() });
                }
                return Err(Error::DeadlockVictim { txn });
            }
            Outcome::Wait { target, converting, cell } => (target, converting, cell),
        };

        // Block outside the shard lock. The hook releases this worker's
        // scheduling turn *before* the condvar wait (no lost wakeup: a
        // grant flips the cell state under its mutex first).
        if let Some(h) = &hook {
            h.on_block(txn, &SchedEvent::LockBlocked { name: name.clone(), mode: target, converting });
        }
        let wait_t0 = self.obs.clock.now();
        let deadline = std::time::Instant::now() + self.timeout;
        let mut state = cell.state.lock();
        while *state == WaitState::Waiting {
            if cell.cv.wait_until(&mut state, deadline).timed_out() {
                break;
            }
        }
        let finished = *state == WaitState::Granted;
        drop(state);
        self.obs
            .wait_hist(target)
            .record(self.obs.clock.now().saturating_sub(wait_t0));
        // Re-acquire a scheduling turn before touching shared state again.
        if let Some(h) = &hook {
            h.on_resume(txn);
        }
        if finished {
            self.waits.lock().remove(&txn);
            // Grant bookkeeping (and the grant event) was done by the releaser.
            return Ok(());
        }
        // Timeout: remove ourselves, unless a grant raced in.
        {
            let mut shard = self.shard_for(&name).lock();
            let state_now = *cell.state.lock();
            if state_now == WaitState::Granted {
                self.waits.lock().remove(&txn);
                return Ok(());
            }
            if let Some(head) = shard.table.get_mut(&name) {
                head.queue.retain(|w| w.txn != txn);
            }
            self.waits.lock().remove(&txn);
        }
        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &hook {
            h.observe(txn, &SchedEvent::LockTimeout { name: name.clone() });
        }
        Err(Error::LockTimeout { txn, what: name.to_string() })
    }

    /// Non-blocking acquire: grant `mode` if possible right now, otherwise
    /// return `Ok(false)` without queueing. Used by ghost cleanup, which
    /// must never wait on user transactions.
    pub fn try_acquire(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<bool> {
        let mut shard = self.shard_for(&name).lock();
        let head = shard.table.entry(name.clone()).or_default();
        let held = head.holders.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m);
        if let Some(h) = held {
            if h.covers(mode) {
                return Ok(true);
            }
        }
        let target = held.map_or(mode, |h| h.sup(mode));
        let converting = held.is_some();
        if Self::grantable(head, txn, target, converting, usize::MAX) {
            Self::set_holder(head, txn, target);
            self.note_grant(txn, &name, target);
            return Ok(true);
        }
        if head.holders.is_empty() && head.queue.is_empty() {
            shard.table.remove(&name);
        }
        Ok(false)
    }

    /// True if `txn` may be granted `target` right now. `queue_limit`
    /// bounds the fairness check to waiters ahead of position `queue_limit`.
    fn grantable(head: &LockHead, txn: TxnId, target: LockMode, converting: bool, queue_limit: usize) -> bool {
        let holders_ok = head
            .holders
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(target));
        if !holders_ok {
            return false;
        }
        if converting {
            return true; // conversions only wait for incompatible holders
        }
        // Fairness: don't overtake earlier waiters we conflict with.
        head.queue
            .iter()
            .take(queue_limit)
            .filter(|w| w.txn != txn)
            .all(|w| w.target.compatible(target))
    }

    fn blockers_of(head: &LockHead, txn: TxnId, target: LockMode, converting: bool) -> HashSet<TxnId> {
        let mut out: HashSet<TxnId> = head
            .holders
            .iter()
            .filter(|(t, m)| *t != txn && !m.compatible(target))
            .map(|(t, _)| *t)
            .collect();
        if !converting {
            for w in &head.queue {
                if w.txn == txn {
                    break;
                }
                if !w.target.compatible(target) {
                    out.insert(w.txn);
                }
            }
        }
        out
    }

    fn has_cycle(waits: &HashMap<TxnId, HashSet<TxnId>>, start: TxnId) -> bool {
        // DFS from start's blockers looking for a path back to start.
        let mut stack: Vec<TxnId> = waits.get(&start).map(|s| s.iter().copied().collect()).unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = waits.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    fn set_holder(head: &mut LockHead, txn: TxnId, target: LockMode) {
        if let Some(entry) = head.holders.iter_mut().find(|(t, _)| *t == txn) {
            entry.1 = target;
        } else {
            head.holders.push((txn, target));
        }
    }

    fn note_grant(&self, txn: TxnId, name: &LockName, target: LockMode) {
        self.stats.acquired.fetch_add(1, Ordering::Relaxed);
        if target == LockMode::E {
            self.stats.escrow_grants.fetch_add(1, Ordering::Relaxed);
        }
        // Read the clock before taking the registry mutex: this runs on
        // every grant, and the vDSO call would otherwise stretch the
        // global critical section.
        let granted_at = self.obs.clock.now();
        let mut reg = self.registry.lock();
        let names = reg.entry(txn).or_default();
        if !names.iter().any(|(n, _)| n == name) {
            names.push((name.clone(), granted_at));
        }
    }

    /// Grant queued requests that have become compatible; refresh the
    /// waits-for edges of those still blocked. Call with the shard locked.
    fn pump_queue(&self, name: &LockName, head: &mut LockHead) {
        let mut i = 0;
        while i < head.queue.len() {
            let w = &head.queue[i];
            if Self::grantable(head, w.txn, w.target, w.converting, i) {
                let w = head.queue.remove(i);
                Self::set_holder(head, w.txn, w.target);
                self.note_grant(w.txn, name, w.target);
                self.waits.lock().remove(&w.txn);
                if let Some(h) = self.hook() {
                    h.on_grant(
                        w.txn,
                        &SchedEvent::LockGranted {
                            name: name.clone(),
                            mode: w.target,
                            converting: w.converting,
                        },
                    );
                }
                let mut st = w.cell.state.lock();
                *st = WaitState::Granted;
                w.cell.cv.notify_all();
            } else {
                i += 1;
            }
        }
        // Refresh blocker sets of remaining waiters.
        let mut waits = self.waits.lock();
        for (i, w) in head.queue.iter().enumerate() {
            let mut blockers: HashSet<TxnId> = head
                .holders
                .iter()
                .filter(|(t, m)| *t != w.txn && !m.compatible(w.target))
                .map(|(t, _)| *t)
                .collect();
            if !w.converting {
                for earlier in head.queue.iter().take(i) {
                    if !earlier.target.compatible(w.target) {
                        blockers.insert(earlier.txn);
                    }
                }
            }
            waits.insert(w.txn, blockers);
        }
    }

    /// Release one lock held by `txn`.
    pub fn release(&self, txn: TxnId, name: &LockName) {
        if let Some(h) = self.hook() {
            h.observe(txn, &SchedEvent::LockReleased { name: name.clone() });
        }
        let mut shard = self.shard_for(name).lock();
        if let Some(head) = shard.table.get_mut(name) {
            head.holders.retain(|(t, _)| *t != txn);
            self.pump_queue(name, head);
            if head.holders.is_empty() && head.queue.is_empty() {
                shard.table.remove(name);
            }
        }
        let now = self.obs.clock.now();
        let mut released_at = None;
        if let Some(names) = self.registry.lock().get_mut(&txn) {
            names.retain(|(n, granted_at)| {
                if n == name {
                    released_at = Some(*granted_at);
                    false
                } else {
                    true
                }
            });
        }
        // Record outside the registry mutex.
        if let Some(granted_at) = released_at {
            self.obs.hold_us.record(now.saturating_sub(granted_at));
        }
    }

    /// Release everything `txn` holds (commit / final rollback), in
    /// acquisition order — deterministic, so queue pumping and grant order
    /// replay identically under the interleaving explorer.
    pub fn release_all(&self, txn: TxnId) {
        let hook = self.hook();
        let names = self.registry.lock().remove(&txn).unwrap_or_default();
        let now = self.obs.clock.now();
        for (name, granted_at) in names {
            self.obs.hold_us.record(now.saturating_sub(granted_at));
            if let Some(h) = &hook {
                h.observe(txn, &SchedEvent::LockReleased { name: name.clone() });
            }
            let mut shard = self.shard_for(&name).lock();
            if let Some(head) = shard.table.get_mut(&name) {
                head.holders.retain(|(t, _)| *t != txn);
                self.pump_queue(&name, head);
                if head.holders.is_empty() && head.queue.is_empty() {
                    shard.table.remove(&name);
                }
            }
        }
        self.waits.lock().remove(&txn);
    }

    /// Names on which `txn` currently holds exactly mode E (escrow), in
    /// acquisition order. The registry stores no mode, so names are
    /// snapshotted first and each one re-checked under its shard —
    /// preserving the shard → registry lock order used everywhere else.
    /// Sound for the single thread driving `txn`: nobody else changes its
    /// holds between the snapshot and the check.
    pub fn held_escrow(&self, txn: TxnId) -> Vec<LockName> {
        let names: Vec<LockName> = self
            .registry
            .lock()
            .get(&txn)
            .map(|v| v.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        names
            .into_iter()
            .filter(|n| self.held_mode(txn, n) == Some(LockMode::E))
            .collect()
    }

    /// Early escrow release (ELR): drop the given E locks at log-append
    /// time, before the commit record is durable. Callers pass the result
    /// of [`LockManager::held_escrow`] and must have published commit
    /// dependencies for these names *before* calling, so a reader granted
    /// by the release observes the stain.
    pub fn release_escrow(&self, txn: TxnId, names: &[LockName]) {
        for name in names {
            self.release(txn, name);
        }
    }

    /// Discard every lock and wait-queue entry. Locks are volatile state:
    /// a (simulated) crash erases them; recovery runs lock-free and new
    /// transactions start clean. Callers must have quiesced all workers.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            // Wake any stragglers so they error out instead of hanging.
            for head in shard.table.values_mut() {
                for w in head.queue.drain(..) {
                    let mut st = w.cell.state.lock();
                    *st = WaitState::Granted;
                    w.cell.cv.notify_all();
                }
            }
            shard.table.clear();
        }
        self.registry.lock().clear();
        self.waits.lock().clear();
    }

    /// Number of locks `txn` currently holds (diagnostics).
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.registry.lock().get(&txn).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use txview_common::IndexId;

    fn key(n: u8) -> LockName {
        LockName::key(IndexId(1), vec![n])
    }

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_millis(500)))
    }

    #[test]
    fn instant_grant_and_reentrant_absorb() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::S).unwrap();
        m.acquire(TxnId(1), key(1), LockMode::S).unwrap();
        assert_eq!(m.held_mode(TxnId(1), &key(1)), Some(LockMode::S));
        assert_eq!(m.stats().acquired, 1, "second request absorbed");
    }

    #[test]
    fn escrow_holders_coexist_on_same_key() {
        let m = mgr();
        for t in 1..=8 {
            m.acquire(TxnId(t), key(7), LockMode::E).unwrap();
        }
        assert_eq!(m.stats().escrow_grants, 8);
        assert_eq!(m.stats().waited, 0);
    }

    #[test]
    fn x_blocks_until_release() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), key(1), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.held_mode(TxnId(2), &key(1)), None);
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(TxnId(2), &key(1)), Some(LockMode::X));
    }

    #[test]
    fn reader_blocks_escrow_writer_and_vice_versa() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::E).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), key(1), LockMode::S));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.held_mode(TxnId(2), &key(1)), None, "S must wait for E");
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn conversion_e_to_x_waits_for_other_escrow_holders() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::E).unwrap();
        m.acquire(TxnId(2), key(1), LockMode::E).unwrap();
        let m2 = Arc::clone(&m);
        // Txn 1 wants to read its row back: E ∨ S = X conversion.
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), key(1), LockMode::S));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.held_mode(TxnId(1), &key(1)), Some(LockMode::E), "still E while waiting");
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(TxnId(1), &key(1)), Some(LockMode::X));
    }

    #[test]
    fn deadlock_detected_requester_dies() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::X).unwrap();
        m.acquire(TxnId(2), key(2), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), key(2), LockMode::X));
        std::thread::sleep(Duration::from_millis(100));
        // Txn 2 now closes the cycle and must die immediately.
        let err = m.acquire(TxnId(2), key(1), LockMode::X).unwrap_err();
        assert!(matches!(err, Error::DeadlockVictim { txn: TxnId(2) }));
        assert_eq!(m.stats().deadlocks, 1);
        // Unblock txn 1 by releasing txn 2's locks (as its rollback would).
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn conversion_deadlock_between_two_escrow_holders() {
        // Both hold E on the same key; both try to convert to X.
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::E).unwrap();
        m.acquire(TxnId(2), key(1), LockMode::E).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), key(1), LockMode::X));
        std::thread::sleep(Duration::from_millis(100));
        let err = m.acquire(TxnId(2), key(1), LockMode::X).unwrap_err();
        assert!(matches!(err, Error::DeadlockVictim { .. }));
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn timeout_fires_without_deadlock() {
        let m = Arc::new(LockManager::new(Duration::from_millis(100)));
        m.acquire(TxnId(1), key(1), LockMode::X).unwrap();
        let err = m.acquire(TxnId(2), key(1), LockMode::S).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        assert_eq!(m.stats().timeouts, 1);
        // Txn 2 left no residue.
        m.release_all(TxnId(1));
        m.acquire(TxnId(3), key(1), LockMode::X).unwrap();
    }

    #[test]
    fn fifo_fairness_no_starvation_overtake() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::S).unwrap();
        // Txn 2 queues for X.
        let m2 = Arc::clone(&m);
        let h2 = std::thread::spawn(move || m2.acquire(TxnId(2), key(1), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        // Txn 3 requests S: compatible with the holder but must NOT
        // overtake the queued X.
        let m3 = Arc::clone(&m);
        let h3 = std::thread::spawn(move || m3.acquire(TxnId(3), key(1), LockMode::S));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.held_mode(TxnId(3), &key(1)), None, "S must queue behind X");
        m.release_all(TxnId(1));
        h2.join().unwrap().unwrap();
        m.release_all(TxnId(2));
        h3.join().unwrap().unwrap();
    }

    #[test]
    fn release_all_wakes_multiple_escrow_waiters_together() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::X).unwrap();
        let handles: Vec<_> = (2..=5)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.acquire(TxnId(t), key(1), LockMode::E))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        m.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap().unwrap();
        }
        // All four escrow holders granted simultaneously.
        for t in 2..=5 {
            assert_eq!(m.held_mode(TxnId(t), &key(1)), Some(LockMode::E));
        }
    }

    #[test]
    fn gap_and_key_locks_are_independent_resources() {
        let m = mgr();
        m.acquire(TxnId(1), LockName::key(IndexId(1), vec![5]), LockMode::X).unwrap();
        // Gap before key 5 is a different resource: no blocking.
        m.acquire(TxnId(2), LockName::gap(IndexId(1), vec![5]), LockMode::X).unwrap();
        assert_eq!(m.stats().waited, 0);
    }

    #[test]
    fn try_acquire_grants_or_declines_without_queueing() {
        let m = mgr();
        assert!(m.try_acquire(TxnId(1), key(1), LockMode::E).unwrap());
        // Compatible: granted.
        assert!(m.try_acquire(TxnId(2), key(1), LockMode::E).unwrap());
        // Incompatible: declined instantly, nothing queued.
        assert!(!m.try_acquire(TxnId(3), key(1), LockMode::X).unwrap());
        assert_eq!(m.held_mode(TxnId(3), &key(1)), None);
        m.release_all(TxnId(1));
        m.release_all(TxnId(2));
        // Now it succeeds.
        assert!(m.try_acquire(TxnId(3), key(1), LockMode::X).unwrap());
        // Covered re-request is a cheap true.
        assert!(m.try_acquire(TxnId(3), key(1), LockMode::S).unwrap());
    }

    #[test]
    fn held_escrow_selects_only_e_locks_and_release_wakes_readers() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::E).unwrap();
        m.acquire(TxnId(1), key(2), LockMode::E).unwrap();
        m.acquire(TxnId(1), key(3), LockMode::X).unwrap();
        m.acquire(TxnId(1), LockName::Object(txview_common::ObjectId(9)), LockMode::IX).unwrap();
        let escrow = m.held_escrow(TxnId(1));
        assert_eq!(escrow, vec![key(1), key(2)], "acquisition order, E only");
        // A reader queued on one of the escrow names is granted by the
        // early release while the X lock stays held.
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), key(1), LockMode::S));
        std::thread::sleep(Duration::from_millis(50));
        m.release_escrow(TxnId(1), &escrow);
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(TxnId(1), &key(1)), None);
        assert_eq!(m.held_mode(TxnId(1), &key(3)), Some(LockMode::X), "X survives ELR");
        assert_eq!(m.held_count(TxnId(1)), 2, "X + IX remain registered");
        m.release_all(TxnId(1));
        m.release_all(TxnId(2));
    }

    #[test]
    fn reset_clears_holders_and_wakes_waiters() {
        let m = mgr();
        m.acquire(TxnId(1), key(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), key(1), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        m.reset();
        // The waiter is woken (granted-by-reset is fine for crash paths).
        h.join().unwrap().unwrap();
        // All state is gone: a fresh txn acquires instantly.
        m.acquire(TxnId(9), key(1), LockMode::X).unwrap();
        assert_eq!(m.held_count(TxnId(1)), 0);
    }

    #[test]
    fn stress_many_threads_many_keys() {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut rng = txview_common::rng::Rng::new(t);
                    for i in 0..200 {
                        let txn = TxnId(t * 1000 + i + 1);
                        let k = key(rng.below(4) as u8);
                        let mode = if rng.chance(0.7) { LockMode::E } else { LockMode::X };
                        match m.acquire(txn, k, mode) {
                            Ok(()) => {
                                counter.fetch_add(1, Ordering::Relaxed);
                                m.release_all(txn);
                            }
                            Err(Error::DeadlockVictim { .. }) | Err(Error::LockTimeout { .. }) => {
                                m.release_all(txn);
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(counter.load(Ordering::Relaxed) > 1000, "most requests succeed");
    }
}
