//! Scheduler hooks: the seam the deterministic interleaving explorer
//! (`txview-engine::interleave`) threads through the lock and transaction
//! managers.
//!
//! Production code never installs a hook — every call site goes through
//! [`LockManager::hook`](crate::LockManager::hook), which returns `None`
//! and costs one uncontended read-lock probe. Under test, a cooperative
//! virtual scheduler implements [`SchedHook`] and the lock/txn managers
//! call back at every *scheduling-relevant* event:
//!
//! * [`SchedHook::yield_point`] — a true choice point: the calling worker
//!   offers to relinquish its turn *before* performing the event (lock
//!   acquire entry, commit start, rollback start, version publish). The
//!   hook may park the calling thread until a scheduler grants it the
//!   turn again.
//! * [`SchedHook::on_block`] — the worker is about to wait on a lock; the
//!   hook must mark it blocked and *return* (the thread then enters the
//!   real condvar wait without holding a scheduling turn).
//! * [`SchedHook::on_grant`] — called from the *releasing* thread's
//!   `pump_queue` when a blocked request is granted; must not block.
//! * [`SchedHook::on_resume`] — the formerly blocked thread woke up (grant
//!   or timeout) and asks for a turn before continuing.
//! * [`SchedHook::observe`] — record-only events (grants, releases,
//!   deadlock victims, commit/rollback completion) that the history oracle
//!   consumes but that are not scheduling choice points.
//!
//! All methods default to no-ops so the trait stays cheap to implement.

use crate::mode::LockMode;
use crate::name::LockName;
use txview_common::TxnId;

/// A scheduling-relevant event, as seen by a [`SchedHook`].
#[derive(Clone, Debug)]
pub enum SchedEvent {
    /// A transaction is about to request `mode` on `name`.
    LockRequest {
        /// Resource being requested.
        name: LockName,
        /// Requested mode (pre-conversion).
        mode: LockMode,
    },
    /// A request was granted (instantly, as a conversion, or after a wait).
    /// `mode` is the effective held mode (post-conversion supremum).
    LockGranted {
        /// Resource granted.
        name: LockName,
        /// Effective mode now held.
        mode: LockMode,
        /// True if this was an in-place conversion of a held lock.
        converting: bool,
    },
    /// A request could not be granted and is about to wait.
    LockBlocked {
        /// Resource waited on.
        name: LockName,
        /// Target mode of the wait (post-conversion supremum).
        mode: LockMode,
        /// True if this is a conversion wait (queue-jumping).
        converting: bool,
    },
    /// One lock was released (individually or during `release_all`).
    LockReleased {
        /// Resource released.
        name: LockName,
    },
    /// The requester closed a waits-for cycle and aborts.
    DeadlockVictim {
        /// Resource whose request closed the cycle.
        name: LockName,
    },
    /// A lock wait timed out; the requester aborts.
    LockTimeout {
        /// Resource whose wait timed out.
        name: LockName,
    },
    /// Commit processing is about to start (before the commit record).
    CommitStart,
    /// Commit finished: locks released, End logged. `commit_lsn` is the
    /// version stamp snapshot readers compare against.
    Committed {
        /// The commit record's LSN.
        commit_lsn: u64,
    },
    /// Rollback processing is about to start (before the Abort record).
    RollbackStart,
    /// Rollback finished: undo complete, locks released.
    RolledBack,
    /// The committing transaction is about to publish multiversion entries
    /// for the view rows it touched (latch-free version-store publish).
    VersionPublish,
    /// A commit record reached the log with its escrow locks released
    /// early (ELR, pipeline mode). Durability is still pending, but the
    /// transaction's effects are visible to later lockers from this point
    /// — for the serializability oracle this, not the later
    /// [`SchedEvent::Committed`], is the serialization point.
    CommitPending {
        /// The commit record's LSN.
        commit_lsn: u64,
    },
    /// A committer enqueued its commit LSN on the group-commit pipeline
    /// and is about to park until the batch outcome resolves it
    /// (`on_block` event, mirroring [`SchedEvent::LockBlocked`]).
    LogForceWait {
        /// The parked commit record's LSN.
        commit_lsn: u64,
    },
    /// The pipeline resolved a parked committer from the leader's thread
    /// (`on_grant` event): its batch flushed, failed, or it was promoted
    /// to lead the next batch.
    LogForceGrant {
        /// The resolved commit record's LSN.
        commit_lsn: u64,
    },
    /// The group-commit leader finished appending its batch and is about
    /// to sync (yield point). This is the pipelined handoff seam: the
    /// next batch may form and append here while this sync is in flight.
    LeaderSync {
        /// Highest LSN the in-flight sync will cover.
        upto: u64,
    },
    /// The group-commit leader drained its batch and is about to append
    /// it (yield point). While the leader sits here, `leader_active` is
    /// still true — committers arriving in this window park as followers
    /// and are resolved (or promoted) by this leader's round.
    LeaderAppend {
        /// Highest LSN the batch append will cover.
        upto: u64,
    },
    /// A committing transaction is about to flush its cascade queue —
    /// coalesced deltas destined for derived (view-over-view) rows — in
    /// dependency order, *before* its commit record is appended (yield
    /// point). Emitted only when the queue is non-empty, so scenarios
    /// without derived views keep their exact schedule counts.
    CascadeFlush {
        /// Number of coalesced (view, group) entries queued at flush start.
        /// Deeper levels enqueued *during* the flush are not counted.
        entries: u64,
    },
    /// An ELR reader depends on a predecessor whose commit record is not
    /// yet durable and is about to park until the predecessor's fate is
    /// known (`on_block` event).
    DepWait {
        /// The predecessor's commit record LSN.
        commit_lsn: u64,
    },
    /// A parked ELR dependent was released from the predecessor's thread
    /// (`on_grant` event): the predecessor became durable or failed.
    DepGrant {
        /// The predecessor's commit record LSN.
        commit_lsn: u64,
    },
}

/// Callbacks a virtual scheduler implements to serialize and record lock /
/// transaction events. All methods are optional; see the module docs for
/// the contract of each.
pub trait SchedHook: Send + Sync {
    /// A true scheduling choice point: may park the caller until it is
    /// rescheduled. Called *before* the event is performed.
    fn yield_point(&self, _txn: TxnId, _ev: &SchedEvent) {}

    /// Record-only observation; must not park the caller.
    fn observe(&self, _txn: TxnId, _ev: &SchedEvent) {}

    /// The worker driving `txn` is about to enter a real lock wait. Must
    /// mark it blocked, release its turn, and return without parking.
    fn on_block(&self, _txn: TxnId, _ev: &SchedEvent) {}

    /// `txn`'s pending request was granted, from the *releaser's* thread
    /// (which holds lock-manager internals). Must not block.
    fn on_grant(&self, _txn: TxnId, _ev: &SchedEvent) {}

    /// The formerly blocked worker woke (grant or timeout) and requests a
    /// turn before touching shared state again. May park the caller.
    fn on_resume(&self, _txn: TxnId) {}
}
