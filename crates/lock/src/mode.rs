//! Lock modes, their compatibility matrix, and the conversion lattice.
//!
//! The matrix is the classic hierarchical one (IS/IX/S/SIX/U/X) extended
//! with the paper's **E (escrow / increment)** mode:
//!
//! ```text
//!        IS   IX   S    SIX  U    X    E
//!   IS   ✓    ✓    ✓    ✓    ✓    ✗    ✓
//!   IX   ✓    ✓    ✗    ✗    ✗    ✗    ✓
//!   S    ✓    ✗    ✓    ✗    ✓    ✗    ✗
//!   SIX  ✓    ✗    ✗    ✗    ✗    ✗    ✗
//!   U    ✓    ✗    ✓    ✗    ✗    ✗    ✗
//!   X    ✗    ✗    ✗    ✗    ✗    ✗    ✗
//!   E    ✓    ✓    ✗    ✗    ✗    ✗    ✓
//! ```
//!
//! E–E compatibility is the whole point: concurrent increments commute.
//! E–S/U/X incompatibility keeps readers consistent: nobody may observe a
//! value that unfinished increments could still change, and an incrementing
//! transaction may not read "its" value back without converting to X
//! (it cannot know the other increments in flight).

use std::fmt;

/// A lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Intent shared (hierarchical parent of S).
    IS,
    /// Intent exclusive (hierarchical parent of X **and of E**).
    IX,
    /// Shared.
    S,
    /// Shared + intent exclusive.
    SIX,
    /// Update (read now, likely write later; prevents conversion deadlock).
    U,
    /// Exclusive.
    X,
    /// Escrow / increment: commutative delta updates only.
    E,
}

impl LockMode {
    /// All modes (test helper and table iteration).
    pub const ALL: [LockMode; 7] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::U,
        LockMode::X,
        LockMode::E,
    ];

    fn idx(self) -> usize {
        match self {
            LockMode::IS => 0,
            LockMode::IX => 1,
            LockMode::S => 2,
            LockMode::SIX => 3,
            LockMode::U => 4,
            LockMode::X => 5,
            LockMode::E => 6,
        }
    }

    /// True iff a holder in `self` and a holder in `other` may coexist.
    pub fn compatible(self, other: LockMode) -> bool {
        const T: bool = true;
        const F: bool = false;
        //                         IS IX  S  SIX U  X  E
        const MATRIX: [[bool; 7]; 7] = [
            /* IS  */ [T, T, T, T, T, F, T],
            /* IX  */ [T, T, F, F, F, F, T],
            /* S   */ [T, F, T, F, T, F, F],
            /* SIX */ [T, F, F, F, F, F, F],
            /* U   */ [T, F, T, F, F, F, F],
            /* X   */ [F, F, F, F, F, F, F],
            /* E   */ [T, T, F, F, F, F, T],
        ];
        let ok = MATRIX[self.idx()][other.idx()];
        if !ok
            && mutation::e_compatible_with_s()
            && matches!(
                (self, other),
                (LockMode::E, LockMode::S) | (LockMode::S, LockMode::E)
            )
        {
            return true;
        }
        ok
    }

    /// Least upper bound in the conversion lattice: the weakest single mode
    /// that grants both `self` and `other`.
    ///
    /// The lattice orders modes by the set of actions they permit. E joins
    /// with anything that reads or writes as X (an incrementer that also
    /// wants to read or overwrite needs full exclusion); E joins with
    /// intent modes as E-over-IX (approximated as X only when S-reading is
    /// involved).
    pub fn sup(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        // Normalize order to halve the table.
        let (a, b) = if self.idx() <= other.idx() { (self, other) } else { (other, self) };
        match (a, b) {
            (IS, IX) => IX,
            (IS, S) => S,
            (IS, SIX) => SIX,
            (IS, U) => U,
            (IS, X) => X,
            (IS, E) => E,
            (IX, S) => SIX,
            (IX, SIX) => SIX,
            (IX, U) => SIX,
            (IX, X) => X,
            (IX, E) => E,
            (S, SIX) => SIX,
            (S, U) => U,
            (S, X) => X,
            (S, E) => X,
            (SIX, U) => SIX,
            (SIX, X) => X,
            (SIX, E) => X,
            (U, X) => X,
            (U, E) => X,
            (X, E) => X,
            _ => unreachable!("normalized ordering covers all pairs"),
        }
    }

    /// True iff holding `self` already implies every right `other` grants.
    pub fn covers(self, other: LockMode) -> bool {
        self.sup(other) == self
    }
}

/// Deliberate protocol mutations used to prove the interleaving explorer's
/// serializability oracle actually *catches* bugs (EXPERIMENTS.md E10).
///
/// Production code never flips these. Each mutation weakens the protocol in
/// a way the paper forbids; the oracle must flag the resulting histories.
/// Process-global — enable only in a dedicated test binary.
pub mod mutation {
    use std::sync::atomic::{AtomicBool, Ordering};

    static E_COMPAT_S: AtomicBool = AtomicBool::new(false);

    /// Mutation: make E (escrow) compatible with S, letting readers observe
    /// rows with uncommitted increments in flight. Breaks read stability.
    pub fn set_e_compatible_with_s(on: bool) {
        E_COMPAT_S.store(on, Ordering::SeqCst);
    }

    /// Is the E∥S mutation currently enabled?
    pub fn e_compatible_with_s() -> bool {
        E_COMPAT_S.load(Ordering::Relaxed)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::U => "U",
            LockMode::X => "X",
            LockMode::E => "E",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use LockMode::*;

    #[test]
    fn escrow_is_self_compatible_but_excludes_readers() {
        assert!(E.compatible(E));
        assert!(!E.compatible(S));
        assert!(!E.compatible(U));
        assert!(!E.compatible(X));
        assert!(E.compatible(IX));
        assert!(E.compatible(IS));
    }

    #[test]
    fn x_excludes_everything() {
        for m in LockMode::ALL {
            assert!(!X.compatible(m));
            assert!(!m.compatible(X));
        }
    }

    #[test]
    fn u_is_asymmetric_free() {
        // Classic U: compatible with S (readers), not with another U.
        assert!(U.compatible(S));
        assert!(!U.compatible(U));
        assert!(!U.compatible(E));
    }

    #[test]
    fn matrix_is_symmetric() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                assert_eq!(a.compatible(b), b.compatible(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn sup_examples_from_the_paper_protocol() {
        // Incrementer that must read its row back: E ∨ S = X.
        assert_eq!(E.sup(S), X);
        // Incrementer that must overwrite (group deletion): E ∨ X = X.
        assert_eq!(E.sup(X), X);
        // Reader upgrading to write: classic S ∨ IX = SIX at table level.
        assert_eq!(S.sup(IX), SIX);
    }

    #[test]
    fn covers_is_reflexive_and_x_covers_all() {
        for m in LockMode::ALL {
            assert!(m.covers(m));
            assert!(X.covers(m));
        }
        assert!(!E.covers(S));
        assert!(!S.covers(E));
    }

    fn arb_mode() -> impl Strategy<Value = LockMode> {
        prop::sample::select(LockMode::ALL.to_vec())
    }

    proptest! {
        /// sup is commutative, idempotent, and an upper bound.
        #[test]
        fn sup_lattice_laws(a in arb_mode(), b in arb_mode()) {
            prop_assert_eq!(a.sup(b), b.sup(a));
            prop_assert_eq!(a.sup(a), a);
            prop_assert!(a.sup(b).covers(a));
            prop_assert!(a.sup(b).covers(b));
        }

        /// Anything incompatible with `c` stays incompatible after joining
        /// more rights in (monotonicity of conflicts).
        #[test]
        fn sup_preserves_conflicts(a in arb_mode(), b in arb_mode(), c in arb_mode()) {
            if !a.compatible(c) {
                prop_assert!(!a.sup(b).compatible(c));
            }
        }

        /// sup is associative (checked exhaustively by proptest sampling).
        #[test]
        fn sup_associative(a in arb_mode(), b in arb_mode(), c in arb_mode()) {
            prop_assert_eq!(a.sup(b).sup(c), a.sup(b.sup(c)));
        }
    }
}
