//! # txview-lock
//!
//! The hierarchical lock manager, including the mode at the heart of the
//! reproduced paper: **E (escrow / increment) locks**.
//!
//! Increment operations on SUM/COUNT columns commute, so concurrent
//! transactions may hold E locks *on the same view row* simultaneously —
//! this is what lets immediate view maintenance scale past the hot-row
//! bottleneck that plain X locking creates. E is incompatible with S, U and
//! X: readers still see stable values, and a transaction that wants to
//! *read* a row it incremented must convert E → X.
//!
//! Also provided: intent modes (IS/IX/SIX) for object/key hierarchies,
//! update locks (U), key and gap (key-range) lock names for phantom
//! protection, FIFO-fair wait queues with conversion priority, a waits-for
//! cycle detector (requester aborts on cycle), and lock statistics that the
//! experiment harness reports.

pub mod hook;
pub mod manager;
pub mod mode;
pub mod name;

pub use hook::{SchedEvent, SchedHook};
pub use manager::{LockManager, LockStats};
pub use mode::LockMode;
pub use name::LockName;
