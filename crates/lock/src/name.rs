//! Lockable resource names.
//!
//! Three granularities, mirroring the paper's protocol:
//!
//! * [`LockName::Object`] — a whole table or view index (intent locks live
//!   here; coarse S/X for scans and DDL);
//! * [`LockName::Key`] — one record in one index, named by its key bytes;
//! * [`LockName::Gap`] — the open interval *immediately before* a key in an
//!   index (next-key / key-range locking). Locking `Gap(k)` together with
//!   `Key(k)` protects the half-open range `(prev_key, k]` against
//!   phantoms; an inserter into that interval must take the gap lock in X.

use std::fmt;
use txview_common::{IndexId, ObjectId};

/// A lockable resource.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LockName {
    /// A whole table / view index.
    Object(ObjectId),
    /// One record, named by index and key bytes.
    Key(IndexId, Vec<u8>),
    /// The open gap before the record with these key bytes.
    Gap(IndexId, Vec<u8>),
    /// The gap above the highest key of an index (range to +infinity).
    EndGap(IndexId),
}

impl LockName {
    /// Convenience constructor for key locks.
    pub fn key(index: IndexId, key_bytes: impl Into<Vec<u8>>) -> LockName {
        LockName::Key(index, key_bytes.into())
    }

    /// Convenience constructor for gap locks.
    pub fn gap(index: IndexId, key_bytes: impl Into<Vec<u8>>) -> LockName {
        LockName::Gap(index, key_bytes.into())
    }
}

impl fmt::Display for LockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockName::Object(o) => write!(f, "object:{}", o.0),
            LockName::Key(i, k) => write!(f, "key:{}:{}", i.0, hex(k)),
            LockName::Gap(i, k) => write!(f, "gap:{}:{}", i.0, hex(k)),
            LockName::EndGap(i) => write!(f, "endgap:{}", i.0),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes.iter().take(16) {
        s.push_str(&format!("{b:02x}"));
    }
    if bytes.len() > 16 {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_hash_distinguish_granules() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(LockName::Object(ObjectId(1)));
        set.insert(LockName::key(IndexId(1), vec![1, 2]));
        set.insert(LockName::gap(IndexId(1), vec![1, 2]));
        set.insert(LockName::EndGap(IndexId(1)));
        assert_eq!(set.len(), 4);
        assert!(set.contains(&LockName::key(IndexId(1), vec![1, 2])));
        assert!(!set.contains(&LockName::key(IndexId(2), vec![1, 2])));
    }

    #[test]
    fn display_is_compact() {
        let n = LockName::key(IndexId(3), vec![0xAB, 0xCD]);
        assert_eq!(n.to_string(), "key:3:abcd");
        let long = LockName::gap(IndexId(1), vec![0u8; 20]);
        assert!(long.to_string().ends_with('…'));
    }
}
