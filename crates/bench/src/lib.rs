//! # txview-bench
//!
//! The experiment suite reproducing the (reconstructed) evaluation of
//! *Graefe & Zwilling, "Transaction support for indexed views", SIGMOD
//! 2004*. One function per experiment (E1–E8); the `run_experiments`
//! binary drives them and prints the tables recorded in `EXPERIMENTS.md`,
//! and the Criterion benches in `benches/` micro-benchmark the same paths.
//!
//! Every experiment ends by *verifying* each view against a recomputation
//! from base — throughput numbers only count if the protocol stayed
//! correct.

pub mod experiments;
pub mod snapshot;

pub use experiments::{
    e1, e12, e13, e2, e3, e4, e5, e6, e7, e8, pipeline_sync_gate, smoke_scale, ExpConfig,
    PipelineGate,
};
pub use snapshot::{
    e11, metrics_demo, snapshot_json, snapshot_pr6_json, snapshot_pr7_json, snapshot_pr8_json,
    snapshot_pr9_json, snapshot_pr10_json,
};
