//! Machine-readable bench snapshots and the E11 observability experiment.
//!
//! `snapshot_json` re-runs the two headline cells (E1 deposits, E2
//! transfers) per maintenance mode and serialises throughput plus
//! commit-latency percentiles as JSON — the driver writes it to
//! `BENCH_PR5.json` so regressions in either metric are diffable across
//! PRs. The JSON is hand-rolled (no serde in the workspace); the shape is
//! fixed and flat, so a formatter plus escaping-free keys is enough.

use txview_engine::{IsolationLevel, MaintenanceMode};
use txview_workload::bank::{Bank, BankConfig};
use txview_workload::driver::{run_for, GroupResult, WorkerSpec};
use txview_workload::report::{f, Table};

use crate::experiments::ExpConfig;

fn mode_name(m: MaintenanceMode) -> &'static str {
    match m {
        MaintenanceMode::Escrow => "escrow",
        MaintenanceMode::XLock => "xlock",
    }
}

/// Format a float for JSON: finite, fixed precision, no NaN/Inf (both are
/// invalid JSON — clamp to 0).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".into()
    }
}

/// One measured cell as a JSON object fragment.
fn cell_json(extra: &str, mode: MaintenanceMode, r: &GroupResult) -> String {
    format!(
        "{{{extra}\"mode\": \"{}\", \"commits_per_s\": {}, \"mean_us\": {}, \
         \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"abort_rate\": {}}}",
        mode_name(mode),
        jf(r.throughput()),
        jf(r.mean_latency_us()),
        r.latency.p50(),
        r.latency.p95(),
        r.latency.p99(),
        if r.abort_rate().is_finite() { format!("{:.4}", r.abort_rate()) } else { "0.0".into() },
    )
}

fn run_deposit_cell_with(cfg: &ExpConfig, bank_cfg: BankConfig, threads: usize) -> GroupResult {
    let bank = Bank::setup(bank_cfg).expect("setup");
    let specs = [WorkerSpec {
        name: "deposit".into(),
        threads,
        isolation: IsolationLevel::ReadCommitted,
        op: bank.batch_deposit_op(4),
    }];
    let res = run_for(&bank.db, &specs, cfg.cell);
    bank.verify().expect("view consistent after snapshot deposit cell");
    res.into_iter().next().unwrap()
}

fn run_deposit_cell(cfg: &ExpConfig, mode: MaintenanceMode, threads: usize) -> GroupResult {
    run_deposit_cell_with(cfg, BankConfig { mode, ..Default::default() }, threads)
}

fn run_transfer_cell(cfg: &ExpConfig, mode: MaintenanceMode, theta: f64) -> GroupResult {
    let bank =
        Bank::setup(BankConfig { mode, zipf_theta: theta, ..Default::default() }).expect("setup");
    let specs = [WorkerSpec {
        name: "transfer".into(),
        threads: 8.min(cfg.max_threads),
        isolation: IsolationLevel::ReadCommitted,
        op: bank.transfer_op(2),
    }];
    let res = run_for(&bank.db, &specs, cfg.cell);
    bank.verify().expect("view consistent after snapshot transfer cell");
    res.into_iter().next().unwrap()
}

/// The `BENCH_PR5.json` payload: E1 (deposit thread sweep) and E2
/// (transfer skew cell) throughput + latency percentiles per mode.
pub fn snapshot_json(cfg: &ExpConfig) -> String {
    let threads: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= cfg.max_threads).collect();
    let mut e1_cells = Vec::new();
    for &t in &threads {
        for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
            let r = run_deposit_cell(cfg, mode, t);
            e1_cells.push(cell_json(&format!("\"threads\": {t}, "), mode, &r));
        }
    }
    let mut e2_cells = Vec::new();
    for theta in [0.0, 0.8, 1.2] {
        for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
            let r = run_transfer_cell(cfg, mode, theta);
            e2_cells.push(cell_json(&format!("\"theta\": {theta:.1}, "), mode, &r));
        }
    }
    format!
(
        "{{\n  \"bench\": \"PR5\",\n  \"cell_ms\": {},\n  \"e1_deposit\": [\n    {}\n  ],\n  \"e2_transfer\": [\n    {}\n  ]\n}}\n",
        cfg.cell.as_millis(),
        e1_cells.join(",\n    "),
        e2_cells.join(",\n    "),
    )
}

/// The `BENCH_PR6.json` payload: the PR5-shaped E1 deposit sweep for
/// continuity, plus an `e13_pipeline` sweep comparing the three commit
/// paths under escrow maintenance — serial (per-commit `flush_to`),
/// leader-based group commit (`pipeline`), and group commit with early
/// escrow lock release (`pipeline+elr`) — at each thread count.
pub fn snapshot_pr6_json(cfg: &ExpConfig) -> String {
    let threads: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= cfg.max_threads).collect();
    let mut e1_cells = Vec::new();
    for &t in &threads {
        for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
            let r = run_deposit_cell(cfg, mode, t);
            e1_cells.push(cell_json(&format!("\"threads\": {t}, "), mode, &r));
        }
    }
    let paths: [(&str, bool, bool); 3] =
        [("serial", false, false), ("pipeline", true, false), ("pipeline+elr", true, true)];
    let mut e13_cells = Vec::new();
    for &t in &threads {
        for (path, pipeline, elr) in paths {
            let r = run_deposit_cell_with(
                cfg,
                BankConfig {
                    mode: MaintenanceMode::Escrow,
                    pipeline,
                    elr,
                    ..Default::default()
                },
                t,
            );
            e13_cells.push(cell_json(
                &format!("\"threads\": {t}, \"path\": \"{path}\", "),
                MaintenanceMode::Escrow,
                &r,
            ));
        }
    }
    format!(
        "{{\n  \"bench\": \"PR6\",\n  \"cell_ms\": {},\n  \"e1_deposit\": [\n    {}\n  ],\n  \"e13_pipeline\": [\n    {}\n  ]\n}}\n",
        cfg.cell.as_millis(),
        e1_cells.join(",\n    "),
        e13_cells.join(",\n    "),
    )
}

mod pr7 {
    //! The `BENCH_PR7.json` cells: follower read throughput as a function
    //! of replication lag, and promotion (failover) time as a function of
    //! the shipped-prefix size.

    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use txview_engine::repl::{Follower, ReplChannel, ReplConfig, ReplicationStream, ShipMode};
    use txview_engine::{AggSpec, Database, Predicate, ViewSource, ViewSpec};
    use txview_common::schema::{Column, Schema};
    use txview_common::value::ValueType;
    use txview_common::{row, Value};
    use txview_storage::fault::{FaultClock, FaultDisk};
    use txview_wal::FaultLogStore;

    pub const VIEW: &str = "branch_balance";
    const ACCOUNTS: i64 = 512;
    const BRANCHES: i64 = 8;

    /// A leader whose WAL lives in a (fault-free) `FaultLogStore`, so a
    /// replication stream can be cut from it. Same shape as the bank's E1
    /// schema: accounts + a per-branch SUM view.
    pub struct Leader {
        pub db: Arc<Database>,
        pub store: FaultLogStore,
        pub catalog: Vec<u8>,
    }

    pub fn build_leader() -> Leader {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        let store = FaultLogStore::new(clock);
        let db = Database::with_parts(
            Arc::new(disk),
            Box::new(store.clone()),
            256,
            Duration::from_secs(5),
        )
        .expect("leader open");
        let t = db
            .create_table(
                "accounts",
                Schema::new(
                    vec![
                        Column::new("id", ValueType::Int),
                        Column::new("branch", ValueType::Int),
                        Column::new("balance", ValueType::Int),
                    ],
                    vec![0],
                )
                .expect("schema"),
            )
            .expect("create table");
        db.create_indexed_view(ViewSpec {
            name: VIEW.into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .expect("create view");
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for id in 0..ACCOUNTS {
            db.insert(&mut txn, "accounts", row![id, id % BRANCHES, 100i64]).expect("load");
        }
        db.commit(&mut txn).expect("load commit");
        db.checkpoint().expect("checkpoint");
        let catalog = db.export_catalog();
        Leader { db, store, catalog }
    }

    /// One leader deposit transaction (single-account, one view row).
    pub fn deposit(db: &Database, seq: i64) {
        let id = seq.rem_euclid(ACCOUNTS);
        db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
            db.update_with(txn, "accounts", &[Value::Int(id)], |r| {
                let mut out = r.clone();
                out.set(2, Value::Int(r.get(2).as_int().unwrap() + 1));
                out
            })
        })
        .expect("deposit");
    }

    pub struct Link {
        pub leader: Leader,
        pub stream: ReplicationStream,
        pub channel: ReplChannel,
        pub follower: Follower,
    }

    pub fn build_link() -> Link {
        let leader = build_leader();
        let mut rcfg = ReplConfig::default();
        rcfg.ship_mode = ShipMode::Async;
        let follower = Follower::new(rcfg.clone(), leader.catalog.clone()).expect("follower");
        let channel = ReplChannel::new(rcfg.faults, 7);
        let stream = ReplicationStream::new(Arc::clone(&leader.db), leader.store.clone(), rcfg);
        Link { leader, stream, channel, follower }
    }

    impl Link {
        pub fn tick(&mut self) {
            self.follower.drain(&self.channel).expect("drain");
            self.stream.drain_control(&self.channel).expect("control");
            self.stream.pump(&self.channel).expect("pump");
        }

        /// Tick until the follower fully covers the leader's durable log.
        pub fn converge(&mut self) {
            for _ in 0..10_000 {
                if self.follower.watermark() >= self.leader.db.log().flushed_lsn()
                    && self.stream.lag_lsns() == 0
                {
                    return;
                }
                self.tick();
            }
            panic!("pr7 link failed to converge");
        }
    }

    /// Follower read throughput while the link holds a target lag: run
    /// leader deposits, shipping only when lag exceeds the target, then
    /// time read-only view scans against the follower at that lag.
    pub fn follower_read_cell(cfg: &ExpConfig, target_lag_lsns: u64) -> (u64, f64, usize) {
        let mut link = build_link();
        link.converge();
        for seq in 0..600i64 {
            deposit(&link.leader.db, seq);
            while link.stream.lag_lsns() > target_lag_lsns {
                link.tick();
            }
        }
        link.leader.db.log().flush_all().expect("flush");
        if target_lag_lsns == 0 {
            link.converge();
        }
        let lag = link.stream.lag_lsns();
        let deadline = Instant::now() + cfg.cell;
        let mut scans = 0u64;
        let mut rows = 0usize;
        while Instant::now() < deadline {
            let db = link.follower.db();
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            let got = db.view_scan(&mut txn, VIEW, None, None).expect("scan");
            db.commit(&mut txn).expect("read commit");
            rows = got.len();
            scans += 1;
        }
        (lag, scans as f64 / cfg.cell.as_secs_f64(), rows)
    }

    /// Promotion time for a shipped prefix of `txns` deposits: converge,
    /// cut the leader loose, and time `Follower::promote` (full ARIES
    /// recovery over the shipped prefix plus the epoch bump).
    pub fn promotion_cell(txns: i64) -> (usize, f64, u64) {
        let mut link = build_link();
        link.converge();
        for seq in 0..txns {
            deposit(&link.leader.db, seq);
            link.tick();
        }
        link.leader.db.log().flush_all().expect("flush");
        link.converge();
        let Link { leader, stream, mut follower, .. } = link;
        drop(stream);
        drop(leader);
        let shipped = follower.store().durable_bytes().len();
        let t0 = Instant::now();
        let report = follower.promote().expect("promote");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        (shipped, elapsed_ms, report.losers)
    }
}

/// The `BENCH_PR7.json` payload: follower read throughput vs replication
/// lag (read-only view scans against the follower while the leader runs
/// ahead by a held lag target), and promotion time vs shipped-prefix size
/// (wall time of the failover recovery pass).
pub fn snapshot_pr7_json(cfg: &ExpConfig) -> String {
    let mut read_cells = Vec::new();
    for target in [0u64, 32, 128] {
        let (lag, scans_per_s, rows) = pr7::follower_read_cell(cfg, target);
        read_cells.push(format!(
            "{{\"target_lag_lsns\": {target}, \"lag_lsns\": {lag}, \"scans_per_s\": {}, \
             \"rows_per_scan\": {rows}}}",
            jf(scans_per_s),
        ));
    }
    let mut promo_cells = Vec::new();
    for txns in [100i64, 400, 1600] {
        let (shipped, ms, losers) = pr7::promotion_cell(txns);
        promo_cells.push(format!(
            "{{\"txns\": {txns}, \"shipped_bytes\": {shipped}, \"promote_ms\": {}, \
             \"losers\": {losers}}}",
            jf(ms),
        ));
    }
    format!(
        "{{\n  \"bench\": \"PR7\",\n  \"cell_ms\": {},\n  \"follower_reads\": [\n    {}\n  ],\n  \"promotion\": [\n    {}\n  ]\n}}\n",
        cfg.cell.as_millis(),
        read_cells.join(",\n    "),
        promo_cells.join(",\n    "),
    )
}

/// The `BENCH_PR8.json` payload: commit throughput of batched deposits as
/// a function of the derived-chain depth stacked on the bank view
/// (depth 1 = just the global rollup; depth 4 = three identity levels
/// plus the rollup), comparing the commit-time coalescing queue against
/// naive eager propagation (`set_cascade_eager`: every base delta walks
/// the whole chain immediately). Coalescing folds a transaction's deltas
/// per (view, group) before they cascade, so its advantage grows with
/// depth and with the number of updates per transaction.
pub fn snapshot_pr8_json(cfg: &ExpConfig) -> String {
    let threads = 4.min(cfg.max_threads).max(1);
    let mut cells = Vec::new();
    for depth in [1usize, 2, 4] {
        for (strategy, eager) in [("coalesced", false), ("eager", true)] {
            let bank = Bank::setup(BankConfig {
                mode: MaintenanceMode::Escrow,
                chain_depth: depth,
                ..Default::default()
            })
            .expect("setup");
            bank.db.set_cascade_eager(eager);
            let specs = [WorkerSpec {
                name: "deposit".into(),
                threads,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.batch_deposit_op(4),
            }];
            let res = run_for(&bank.db, &specs, cfg.cell);
            bank.verify().expect("chain consistent after pr8 cell");
            let r = res.into_iter().next().unwrap();
            cells.push(cell_json(
                &format!("\"depth\": {depth}, \"strategy\": \"{strategy}\", "),
                MaintenanceMode::Escrow,
                &r,
            ));
        }
    }
    format!(
        "{{\n  \"bench\": \"PR8\",\n  \"cell_ms\": {},\n  \"threads\": {threads},\n  \"e15_chain\": [\n    {}\n  ]\n}}\n",
        cfg.cell.as_millis(),
        cells.join(",\n    "),
    )
}

mod pr9 {
    //! The `BENCH_PR9.json` cells: E16 — response-time percentiles vs
    //! offered load over **real TCP**, through the full service stack
    //! (wire codec, session layer, bounded worker queue, engine, group
    //! commit), serial vs pipelined+ELR commit paths.

    use super::*;
    use std::time::Duration;
    use txview_server::{run_load, LoadConfig, LoadReport, Server, ServerConfig};

    /// Seeded WAL sync latency for every E16 cell — the cost group commit
    /// amortizes (matches [`crate::experiments::pipeline_sync_gate`]).
    pub const SYNC_US: u64 = 50;
    pub const ACCOUNTS: i64 = 1024;
    pub const BRANCHES: i64 = 8;

    /// One open-loop cell: boot a bank server on an ephemeral port, offer
    /// `rate` req/s for one bench cell, drain gracefully, verify views.
    pub fn latency_cell(
        cfg: &ExpConfig,
        pipeline: bool,
        elr: bool,
        rate: f64,
        connections: usize,
    ) -> LoadReport {
        let bank = Bank::setup(BankConfig {
            mode: MaintenanceMode::Escrow,
            accounts: ACCOUNTS,
            branches: BRANCHES,
            pipeline,
            elr,
            sync_latency_us: SYNC_US,
            ..Default::default()
        })
        .expect("bank setup");
        let server = Server::start(bank.db.clone(), "127.0.0.1:0", ServerConfig::default())
            .expect("server start");
        let report = run_load(&LoadConfig {
            addr: server.local_addr().to_string(),
            connections,
            rate,
            // Floor the cell length: an open-loop percentile needs enough
            // samples even in --quick runs.
            duration: cfg.cell.max(Duration::from_millis(400)),
            read_fraction: 0.5,
            accounts: ACCOUNTS, // must match the server's bank
            branches: BRANCHES,
            seed: 42,
            ..Default::default()
        });
        server.shutdown().expect("graceful drain");
        bank.verify().expect("views consistent after E16 cell");
        report
    }
}

/// The `BENCH_PR9.json` payload: the E16 latency-vs-offered-load sweep
/// over real TCP (serial vs pipelined+ELR under a seeded 50 µs WAL sync),
/// plus the `gates` section recording the enforced pipeline gate verdict
/// (`pipeline_sync_gate`) so "was this actually gating CI?" is part of
/// the diffable artifact.
pub fn snapshot_pr9_json(cfg: &ExpConfig) -> String {
    use crate::experiments::pipeline_sync_gate;
    let jms = |v: f64| if v.is_finite() { format!("{v:.3}") } else { "0.0".into() };
    let connections = 8.min(cfg.max_threads).max(2);
    let paths: [(&str, bool, bool); 2] = [("serial", false, false), ("pipeline+elr", true, true)];
    let mut cells = Vec::new();
    for (path, pipeline, elr) in paths {
        for rate in [300.0, 1000.0, 3000.0] {
            let r = pr9::latency_cell(cfg, pipeline, elr, rate, connections);
            cells.push(format!(
                "{{\"path\": \"{path}\", \"offered_per_s\": {}, \"achieved_per_s\": {}, \
                 \"sent\": {}, \"ok\": {}, \"acked_commits\": {}, \"p50_ms\": {}, \
                 \"p95_ms\": {}, \"p99_ms\": {}, \"retryable_errors\": {}, \
                 \"fatal_errors\": {}, \"io_errors\": {}}}",
                jf(r.offered_rate),
                jf(r.achieved_rate),
                r.sent,
                r.ok,
                r.acked_commits,
                jms(r.p50_ms()),
                jms(r.latency.p95() as f64 / 1000.0),
                jms(r.p99_ms()),
                r.retryable_errors,
                r.fatal_errors,
                r.io_errors,
            ));
        }
    }
    let g = pipeline_sync_gate(cfg);
    let gate_json = format!(
        "{{\"serial_commits_per_s\": {}, \"pipelined_commits_per_s\": {}, \"ratio\": {}, \
         \"threshold\": {}, \"enforced\": {}, \"pass\": {}}}",
        jf(g.serial),
        jf(g.pipelined),
        if g.ratio.is_finite() { format!("{:.3}", g.ratio) } else { "0.0".into() },
        g.threshold,
        g.enforced,
        g.pass,
    );
    format!(
        "{{\n  \"bench\": \"PR9\",\n  \"cell_ms\": {},\n  \"sync_us\": {},\n  \"connections\": {connections},\n  \"e16_latency\": [\n    {}\n  ],\n  \"gates\": {{\n    \"pipeline_sync\": {}\n  }}\n}}\n",
        cfg.cell.as_millis(),
        pr9::SYNC_US,
        cells.join(",\n    "),
        gate_json,
    )
}

mod pr10 {
    //! The `BENCH_PR10.json` cells: E17 — the hash point-read fast path
    //! measured against the B-tree lookup it shadows (same keys, results
    //! asserted identical), and a mixed HTAP cell running long snapshot
    //! scans against escrow writers plus a MIN/MAX extremum deleter.

    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    use txview_common::schema::{Column, Schema};
    use txview_common::value::ValueType;
    use txview_common::{row, Value};
    use txview_engine::{AggSpec, Database, Predicate, ViewSource, ViewSpec};

    pub const BANK_VIEW: &str = "branch_balance";
    pub const STATS_VIEW: &str = "reading_stats";
    pub const ACCOUNTS: i64 = 512;
    pub const BRANCHES: i64 = 8;
    const STATS_GROUPS: i64 = 4;

    /// Accounts + escrow SUM bank view, plus a `readings` table under a
    /// MIN/MAX/AVG stats view. `hash` attaches the point-read hash index
    /// to both views (the B-tree baseline cell leaves it off).
    pub fn build(hash: bool) -> Arc<Database> {
        let db = Database::new_in_memory(256);
        let t = db
            .create_table(
                "accounts",
                Schema::new(
                    vec![
                        Column::new("id", ValueType::Int),
                        Column::new("branch", ValueType::Int),
                        Column::new("balance", ValueType::Int),
                    ],
                    vec![0],
                )
                .expect("schema"),
            )
            .expect("create accounts");
        db.create_indexed_view(ViewSpec {
            name: BANK_VIEW.into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .expect("create bank view");
        let readings = db
            .create_table(
                "readings",
                Schema::new(
                    vec![
                        Column::new("id", ValueType::Int),
                        Column::new("grp", ValueType::Int),
                        Column::new("val", ValueType::Int),
                    ],
                    vec![0],
                )
                .expect("schema"),
            )
            .expect("create readings");
        db.create_indexed_view(ViewSpec {
            name: STATS_VIEW.into(),
            source: ViewSource::Single { table: readings, group_by: vec![1] },
            aggs: vec![
                AggSpec::SumInt { col: 2 },
                AggSpec::Min { col: 2 },
                AggSpec::Max { col: 2 },
                AggSpec::Avg { col: 2, float: false },
            ],
            filter: Predicate::True,
            maintenance: MaintenanceMode::XLock,
            deferred: false,
            eager_group_delete: false,
        })
        .expect("create stats view");
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for id in 0..ACCOUNTS {
            db.insert(&mut txn, "accounts", row![id, id % BRANCHES, 100i64]).expect("load");
        }
        for id in 0..STATS_GROUPS * 3 {
            db.insert(&mut txn, "readings", row![id, id % STATS_GROUPS, 10 * (id / STATS_GROUPS + 1)])
                .expect("load readings");
        }
        db.commit(&mut txn).expect("load commit");
        if hash {
            db.create_hash_index(BANK_VIEW).expect("hash on bank view");
            db.create_hash_index(STATS_VIEW).expect("hash on stats view");
        }
        db.checkpoint().expect("checkpoint");
        db
    }

    /// Groups in the point-read cell: enough view rows that the B-tree
    /// needs a real descent while a sized hash directory still answers in
    /// two page fetches (directory + single-page bucket).
    const PR_GROUPS: i64 = 2048;

    /// Point-read cell: single-threaded group lookups against a
    /// 2048-group view, either through the hash fast path or the plain
    /// B-tree path. Before timing, every group is read through both paths
    /// and asserted equal — the differential oracle runs in-cell but
    /// outside the measured loop, so reads/s compares like with like.
    /// Returns (reads/s, p50 ns, p99 ns).
    pub fn point_read_cell(cfg: &ExpConfig, use_hash: bool) -> (f64, u64, u64) {
        let db = Database::new_in_memory(4096);
        let t = db
            .create_table(
                "accounts",
                Schema::new(
                    vec![
                        Column::new("id", ValueType::Int),
                        Column::new("branch", ValueType::Int),
                        Column::new("balance", ValueType::Int),
                    ],
                    vec![0],
                )
                .expect("schema"),
            )
            .expect("create accounts");
        db.create_indexed_view(ViewSpec {
            name: BANK_VIEW.into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .expect("create bank view");
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for id in 0..PR_GROUPS * 2 {
            db.insert(&mut txn, "accounts", row![id, id % PR_GROUPS, 100i64]).expect("load");
        }
        db.commit(&mut txn).expect("load commit");
        if use_hash {
            db.create_hash_index_sized(BANK_VIEW, (PR_GROUPS / 8) as usize)
                .expect("hash on bank view");
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            for b in 0..PR_GROUPS {
                let g = [Value::Int(b)];
                let hash = db.view_point_read(&mut txn, BANK_VIEW, &g).expect("point read");
                let tree = db.view_lookup(&mut txn, BANK_VIEW, &g).expect("lookup");
                assert_eq!(hash, tree, "hash point read diverged from B-tree at group {b}");
                assert!(hash.is_some(), "group {b} missing");
            }
            db.commit(&mut txn).expect("oracle commit");
        }
        db.checkpoint().expect("checkpoint");
        let mut lat = Vec::with_capacity(1 << 16);
        let t_start = Instant::now();
        let deadline = t_start + cfg.cell;
        let mut reads = 0u64;
        // A xorshift walk over the groups: point reads scattered across
        // the key space, so the B-tree path cannot ride one hot leaf and
        // the hash path cannot ride one hot bucket.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        while Instant::now() < deadline {
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            for _ in 0..64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let g = [Value::Int((state % PR_GROUPS as u64) as i64)];
                let t0 = Instant::now();
                let got = if use_hash {
                    db.view_point_read(&mut txn, BANK_VIEW, &g).expect("point read")
                } else {
                    db.view_lookup(&mut txn, BANK_VIEW, &g).expect("lookup")
                };
                lat.push(t0.elapsed().as_nanos() as u64);
                assert!(got.is_some());
                reads += 1;
            }
            db.commit(&mut txn).expect("read commit");
        }
        let secs = t_start.elapsed().as_secs_f64();
        lat.sort_unstable();
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        (reads as f64 / secs, pct(0.50), pct(0.99))
    }

    /// What the mixed HTAP cell measured.
    pub struct HtapResult {
        pub writer_commits_per_s: f64,
        pub deleter_commits_per_s: f64,
        pub scans_per_s: f64,
        pub rows_per_scan: usize,
        pub scan_p50_us: u64,
        /// Read-committed point reads served off the hash index per second
        /// (a hot-group reader thread running beside the writers).
        pub point_reads_per_s: f64,
        /// Mean number of writer commits that landed while a snapshot scan
        /// transaction was open — the staleness its snapshot carries.
        pub freshness_lag_commits: f64,
        pub minmax_recomputes: u64,
        pub hash_point_reads: u64,
    }

    /// Mixed HTAP cell: two escrow writer threads deposit into the bank
    /// view, one deleter thread churns the stats view's MAX (insert a new
    /// maximum, then delete it — every delete takes the recompute path),
    /// and one snapshot reader runs long multi-scan transactions. Inside
    /// one snapshot transaction the bank view's total must not move
    /// between repeated scans (snapshot stability), while the freshness
    /// lag records how far the live state ran ahead.
    pub fn htap_cell(cfg: &ExpConfig) -> HtapResult {
        let db = build(true);
        let before = db.metrics_snapshot();
        let stop = Arc::new(AtomicBool::new(false));
        let write_commits = Arc::new(AtomicU64::new(0));
        let delete_commits = Arc::new(AtomicU64::new(0));
        let mut writers = Vec::new();
        for w in 0..2usize {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&write_commits);
            writers.push(std::thread::spawn(move || {
                let mut seq = w as i64;
                while !stop.load(Ordering::Relaxed) {
                    let id = seq.rem_euclid(ACCOUNTS);
                    let ok = db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
                        db.update_with(txn, "accounts", &[Value::Int(id)], |r| {
                            let mut out = r.clone();
                            out.set(2, Value::Int(r.get(2).as_int().unwrap() + 1));
                            out
                        })
                    });
                    if ok.is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                    seq += 2;
                }
            }));
        }
        let point_reads = Arc::new(AtomicU64::new(0));
        {
            // Hot-group point reader: read-committed lookups through the
            // hash fast path while the writers churn the same rows.
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&point_reads);
            writers.push(std::thread::spawn(move || {
                let mut b = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin(IsolationLevel::ReadCommitted);
                    for _ in 0..32 {
                        let got = db
                            .view_point_read(&mut txn, BANK_VIEW, &[Value::Int(b % BRANCHES)])
                            .expect("point read");
                        assert!(got.is_some(), "bank group vanished under point reader");
                        b += 1;
                    }
                    db.commit(&mut txn).expect("point-read commit");
                    reads.fetch_add(32, Ordering::Relaxed);
                }
            }));
        }
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&delete_commits);
            writers.push(std::thread::spawn(move || {
                let mut id = STATS_GROUPS * 3;
                let mut val = 1_000i64; // above every seeded value: always the new MAX
                while !stop.load(Ordering::Relaxed) {
                    let ins = db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
                        db.insert(txn, "readings", row![id, id % STATS_GROUPS, val])
                    });
                    if ins.is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                        // Deleting the row that *is* the group MAX forces
                        // the recompute-from-base fallback every time.
                        if db
                            .run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
                                db.delete(txn, "readings", &[Value::Int(id)])
                            })
                            .is_ok()
                        {
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    id += 1;
                    val += 1;
                }
            }));
        }
        let t_start = Instant::now();
        let deadline = t_start + cfg.cell;
        let mut scan_lat = Vec::new();
        let mut scans = 0u64;
        let mut rows_per_scan = 0usize;
        let mut lag_total = 0u64;
        while Instant::now() < deadline {
            let c0 = write_commits.load(Ordering::Relaxed) + delete_commits.load(Ordering::Relaxed);
            let t0 = Instant::now();
            let mut txn = db.begin(IsolationLevel::Snapshot);
            let mut first_total: Option<i64> = None;
            for _ in 0..16 {
                let rows = db.view_scan(&mut txn, BANK_VIEW, None, None).expect("scan");
                rows_per_scan = rows.len();
                let total: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
                match first_total {
                    None => first_total = Some(total),
                    Some(t) => assert_eq!(t, total, "snapshot scan saw the total move"),
                }
                let _ = db.view_scan(&mut txn, STATS_VIEW, None, None).expect("stats scan");
            }
            db.commit(&mut txn).expect("scan commit");
            scan_lat.push(t0.elapsed().as_micros() as u64);
            let c1 = write_commits.load(Ordering::Relaxed) + delete_commits.load(Ordering::Relaxed);
            lag_total += c1 - c0;
            scans += 1;
        }
        stop.store(true, Ordering::Relaxed);
        for h in writers {
            h.join().expect("worker thread");
        }
        let secs = t_start.elapsed().as_secs_f64();
        db.verify_view(BANK_VIEW).expect("bank view consistent after HTAP cell");
        db.verify_view(STATS_VIEW).expect("stats view consistent after HTAP cell");
        let after = db.metrics_snapshot();
        let delta = |name: &str| {
            after.counter_value(name).unwrap_or(0) - before.counter_value(name).unwrap_or(0)
        };
        scan_lat.sort_unstable();
        HtapResult {
            writer_commits_per_s: write_commits.load(Ordering::Relaxed) as f64 / secs,
            deleter_commits_per_s: delete_commits.load(Ordering::Relaxed) as f64 / secs,
            scans_per_s: scans as f64 / secs,
            rows_per_scan,
            scan_p50_us: scan_lat[scan_lat.len() / 2],
            point_reads_per_s: point_reads.load(Ordering::Relaxed) as f64 / secs,
            freshness_lag_commits: lag_total as f64 / scans.max(1) as f64,
            minmax_recomputes: delta("engine.minmax_recomputes"),
            hash_point_reads: delta("engine.hash_point_reads"),
        }
    }
}

/// The `BENCH_PR10.json` payload: E17 — hash vs B-tree point-read
/// latency (p50/p99 ns, results asserted byte-identical in-cell) and the
/// mixed HTAP cell (snapshot-scan freshness lag vs escrow-writer and
/// MIN/MAX-deleter throughput).
pub fn snapshot_pr10_json(cfg: &ExpConfig) -> String {
    let mut pr_cells = Vec::new();
    for (path, use_hash) in [("btree", false), ("hash", true)] {
        let (reads_per_s, p50, p99) = pr10::point_read_cell(cfg, use_hash);
        pr_cells.push(format!(
            "{{\"path\": \"{path}\", \"reads_per_s\": {}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}}",
            jf(reads_per_s),
        ));
    }
    let h = pr10::htap_cell(cfg);
    let htap_json = format!(
        "{{\"writer_commits_per_s\": {}, \"deleter_commits_per_s\": {}, \"scans_per_s\": {}, \
         \"rows_per_scan\": {}, \"scan_p50_us\": {}, \"point_reads_per_s\": {}, \
         \"freshness_lag_commits\": {}, \"minmax_recomputes\": {}, \"hash_point_reads\": {}}}",
        jf(h.writer_commits_per_s),
        jf(h.deleter_commits_per_s),
        jf(h.scans_per_s),
        h.rows_per_scan,
        h.scan_p50_us,
        jf(h.point_reads_per_s),
        jf(h.freshness_lag_commits),
        h.minmax_recomputes,
        h.hash_point_reads,
    );
    format!(
        "{{\n  \"bench\": \"PR10\",\n  \"cell_ms\": {},\n  \"e17_point_read\": [\n    {}\n  ],\n  \"e17_htap\": {}\n}}\n",
        cfg.cell.as_millis(),
        pr_cells.join(",\n    "),
        htap_json,
    )
}

/// E11 — observability cost and what the histograms show: escrow vs
/// X-lock commit-latency percentiles at full contention (max threads,
/// 8 hot view rows). Metrics are always on, so the "overhead" claim is
/// checked against the recorded PR-3 E1 numbers in `EXPERIMENTS.md`; this
/// table is the percentile evidence the mean in E1 hides.
pub fn e11(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E11: commit latency percentiles at max threads (4-update deposit txns), us",
        &["mode", "threads", "commits/s", "mean", "p50", "p95", "p99"],
    );
    let t = cfg.max_threads;
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let r = run_deposit_cell(cfg, mode, t);
        table.row(vec![
            mode_name(mode).into(),
            t.to_string(),
            f(r.throughput()),
            f(r.mean_latency_us()),
            r.latency.p50().to_string(),
            r.latency.p95().to_string(),
            r.latency.p99().to_string(),
        ]);
    }
    table
}

/// Run a short contended cell and return the engine's human-readable
/// metrics table (`Database::metrics_report`) — the `--metrics` output of
/// `run_experiments`.
pub fn metrics_demo(cfg: &ExpConfig) -> String {
    let bank = Bank::setup(BankConfig::default()).expect("setup");
    let specs = [WorkerSpec {
        name: "deposit".into(),
        threads: 4.min(cfg.max_threads).max(2),
        isolation: IsolationLevel::ReadCommitted,
        op: bank.batch_deposit_op(4),
    }];
    let _ = run_for(&bank.db, &specs, cfg.cell);
    bank.verify().expect("view consistent after metrics demo cell");
    bank.db.metrics_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny() -> ExpConfig {
        ExpConfig { cell: Duration::from_millis(80), max_threads: 2 }
    }

    /// Minimal structural validator: balanced delimiters outside strings
    /// and no NaN/Inf tokens. Good enough to catch a malformed
    /// hand-rolled payload without a JSON parser in the workspace.
    fn check_balanced(s: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced close in JSON");
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
        assert!(!s.contains("NaN") && !s.contains("inf"), "non-finite number leaked into JSON");
    }

    #[test]
    fn snapshot_json_has_expected_shape() {
        let s = snapshot_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR5\""));
        assert!(s.contains("\"e1_deposit\""));
        assert!(s.contains("\"e2_transfer\""));
        assert!(s.contains("\"p99_us\""));
        // Both modes appear in both sections.
        assert!(s.matches("\"escrow\"").count() >= 2);
        assert!(s.matches("\"xlock\"").count() >= 2);
    }

    #[test]
    fn snapshot_pr6_json_has_expected_shape() {
        let s = snapshot_pr6_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR6\""));
        assert!(s.contains("\"e1_deposit\""));
        assert!(s.contains("\"e13_pipeline\""));
        for path in ["\"serial\"", "\"pipeline\"", "\"pipeline+elr\""] {
            assert!(s.contains(path), "missing commit path {path}");
        }
    }

    #[test]
    fn snapshot_pr7_json_has_expected_shape() {
        let s = snapshot_pr7_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR7\""));
        assert!(s.contains("\"follower_reads\""));
        assert!(s.contains("\"promotion\""));
        assert!(s.contains("\"scans_per_s\""));
        assert!(s.contains("\"promote_ms\""));
        assert!(s.contains("\"shipped_bytes\""));
    }

    #[test]
    fn snapshot_pr8_json_has_expected_shape() {
        let s = snapshot_pr8_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR8\""));
        assert!(s.contains("\"e15_chain\""));
        for depth in ["\"depth\": 1", "\"depth\": 2", "\"depth\": 4"] {
            assert!(s.contains(depth), "missing {depth}");
        }
        assert_eq!(s.matches("\"coalesced\"").count(), 3);
        assert_eq!(s.matches("\"eager\"").count(), 3);
    }

    #[test]
    fn snapshot_pr9_json_has_expected_shape() {
        let s = snapshot_pr9_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR9\""));
        assert!(s.contains("\"e16_latency\""));
        for path in ["\"serial\"", "\"pipeline+elr\""] {
            assert!(s.contains(path), "missing commit path {path}");
        }
        assert!(s.contains("\"p99_ms\""));
        // The gate verdict — and the fact that it is enforced — is part
        // of the artifact.
        assert!(s.contains("\"pipeline_sync\""));
        assert!(s.contains("\"enforced\": true"));
        assert!(s.contains("\"threshold\": 1.5"));
    }

    #[test]
    fn snapshot_pr10_json_has_expected_shape() {
        let s = snapshot_pr10_json(&tiny());
        check_balanced(&s);
        assert!(s.contains("\"bench\": \"PR10\""));
        assert!(s.contains("\"e17_point_read\""));
        assert!(s.contains("\"e17_htap\""));
        for path in ["\"btree\"", "\"hash\""] {
            assert!(s.contains(path), "missing point-read path {path}");
        }
        assert!(s.contains("\"p50_ns\""));
        assert!(s.contains("\"freshness_lag_commits\""));
        assert!(s.contains("\"minmax_recomputes\""));
    }

    #[test]
    fn e11_reports_percentiles_for_both_modes() {
        let table = e11(&tiny());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn metrics_demo_shows_layered_metrics() {
        let report = metrics_demo(&tiny());
        for name in ["txn.commits", "lock.acquired", "wal.sync_us", "pool.hits", "engine.escrow_applies"]
        {
            assert!(report.contains(name), "metrics report missing {name}:\n{report}");
        }
    }
}
