//! The eight experiments. See `DESIGN.md` §3 for the claim each one tests
//! and `EXPERIMENTS.md` for recorded results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txview_common::{row, Value};
use txview_engine::{IsolationLevel, MaintenanceMode};
use txview_workload::bank::{Bank, BankConfig};
use txview_workload::churn::{Churn, ChurnConfig};
use txview_workload::driver::{run_for, WorkerSpec};
use txview_workload::report::{f, pct, Table};
use txview_workload::sales::{Sales, SalesConfig};

/// Knobs shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Wall-clock duration per measured cell.
    pub cell: Duration,
    /// Writer thread counts used by sweeps (capped to this max elsewhere).
    pub max_threads: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { cell: Duration::from_millis(1500), max_threads: 16 }
    }
}

impl ExpConfig {
    /// A fast smoke configuration (CI, `--quick`).
    pub fn quick() -> ExpConfig {
        ExpConfig { cell: Duration::from_millis(300), max_threads: 8 }
    }
}

fn mode_name(m: MaintenanceMode) -> &'static str {
    match m {
        MaintenanceMode::Escrow => "escrow",
        MaintenanceMode::XLock => "xlock",
    }
}

/// E1 — throughput vs. concurrent writers, escrow vs. X-lock, 8 hot view
/// rows. The paper's headline: escrow scales, X-lock flatlines.
pub fn e1(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E1: writer throughput vs threads (8 branches, 4-update txns), commits/s",
        &["threads", "escrow", "xlock", "escrow/xlock"],
    );
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= cfg.max_threads)
        .collect();
    for &t in &threads {
        let mut tput = [0.0f64; 2];
        for (i, mode) in [MaintenanceMode::Escrow, MaintenanceMode::XLock].into_iter().enumerate() {
            let bank = Bank::setup(BankConfig { mode, ..Default::default() }).expect("setup");
            let specs = [WorkerSpec {
                name: "deposit".into(),
                threads: t,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.batch_deposit_op(4),
            }];
            let res = run_for(&bank.db, &specs, cfg.cell);
            bank.verify().expect("view consistent after E1 cell");
            tput[i] = res[0].throughput();
        }
        table.row(vec![
            t.to_string(),
            f(tput[0]),
            f(tput[1]),
            f(tput[0] / tput[1].max(1e-9)),
        ]);
    }
    table
}

/// E2 — abort/deadlock behaviour of multi-row transactions under skew.
pub fn e2(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E2: transfers (2 accounts/txn, 8 threads): commits/s, deadlocks, aborts",
        &["theta", "mode", "commits/s", "deadlocks", "timeouts", "abort rate"],
    );
    let threads = 8.min(cfg.max_threads);
    for theta in [0.0, 0.8, 1.2] {
        for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
            let bank = Bank::setup(BankConfig { mode, zipf_theta: theta, ..Default::default() })
                .expect("setup");
            let specs = [WorkerSpec {
                name: "transfer".into(),
                threads,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            }];
            let res = run_for(&bank.db, &specs, cfg.cell);
            bank.verify().expect("view consistent after E2 cell");
            table.row(vec![
                format!("{theta:.1}"),
                mode_name(mode).into(),
                f(res[0].throughput()),
                res[0].deadlocks.to_string(),
                res[0].timeouts.to_string(),
                pct(res[0].abort_rate()),
            ]);
        }
    }
    table
}

/// E3 — the contention crossover: sweep the number of groups (view rows).
pub fn e3(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E3: throughput vs #groups (8 threads, 4-update txns), commits/s",
        &["groups", "escrow", "xlock", "escrow/xlock"],
    );
    let threads = 8.min(cfg.max_threads);
    for groups in [1i64, 4, 16, 256, 4096] {
        let mut tput = [0.0f64; 2];
        for (i, mode) in [MaintenanceMode::Escrow, MaintenanceMode::XLock].into_iter().enumerate() {
            let accounts = (groups * 4).max(4096);
            let bank = Bank::setup(BankConfig {
                mode,
                branches: groups,
                accounts,
                ..Default::default()
            })
            .expect("setup");
            let specs = [WorkerSpec {
                name: "deposit".into(),
                threads,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.batch_deposit_op(4),
            }];
            let res = run_for(&bank.db, &specs, cfg.cell);
            bank.verify().expect("view consistent after E3 cell");
            tput[i] = res[0].throughput();
        }
        table.row(vec![
            groups.to_string(),
            f(tput[0]),
            f(tput[1]),
            f(tput[0] / tput[1].max(1e-9)),
        ]);
    }
    table
}

/// E4 — reader isolation levels against escrow writers.
pub fn e4(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E4: 8 escrow writers + 2 view-scanning readers, by reader isolation",
        &["reader isolation", "writer commits/s", "reader scans/s", "reader mean ms", "anomalies"],
    );
    let wthreads = 8.min(cfg.max_threads);
    for (name, iso) in [
        ("serializable", IsolationLevel::Serializable),
        ("read-committed", IsolationLevel::ReadCommitted),
        ("snapshot", IsolationLevel::Snapshot),
    ] {
        let bank = Bank::setup(BankConfig::default()).expect("setup");
        let anomalies = Arc::new(AtomicU64::new(0));
        let specs = [
            WorkerSpec {
                name: "transfer".into(),
                threads: wthreads,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            },
            WorkerSpec {
                name: "audit".into(),
                threads: 2,
                isolation: iso,
                op: bank.audit_op(Arc::clone(&anomalies)),
            },
        ];
        let res = run_for(&bank.db, &specs, cfg.cell);
        bank.verify().expect("view consistent after E4 cell");
        table.row(vec![
            name.into(),
            f(res[0].throughput()),
            f(res[1].throughput()),
            f(res[1].mean_latency_us() / 1000.0),
            anomalies.load(Ordering::Relaxed).to_string(),
        ]);
    }
    table
}

/// E5 — logging and recovery: log volume per committed transaction, crash
/// with in-flight losers, phase-by-phase recovery work, post-recovery
/// verification.
pub fn e5(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E5: crash recovery (steal=0.5, 4 in-flight losers at crash)",
        &[
            "mode",
            "log bytes/commit",
            "analysis recs",
            "redo applied",
            "logical undos",
            "a+r+u ms",
            "view verified",
        ],
    );
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let bank = Bank::setup(BankConfig { mode, ..Default::default() }).expect("setup");
        let db = Arc::clone(&bank.db);
        let before = db.stats();
        let specs = [WorkerSpec {
            name: "deposit".into(),
            threads: 4.min(cfg.max_threads),
            isolation: IsolationLevel::ReadCommitted,
            op: bank.deposit_op(),
        }];
        let res = run_for(&db, &specs, cfg.cell);
        let after = db.stats();
        let bytes_per_commit =
            (after.log_bytes - before.log_bytes) as f64 / res[0].committed.max(1) as f64;
        db.checkpoint().expect("checkpoint");

        // Leave 4 transactions in flight (losers) and crash.
        for k in 0..4i64 {
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            db.update_with(&mut txn, "accounts", &[Value::Int(k)], |r| {
                let mut out = r.clone();
                let bal = r.get(2).as_int().unwrap();
                out.set(2, Value::Int(bal + 1_000_000));
                out
            })
            .expect("loser op");
            std::mem::forget(txn);
        }
        let t0 = Instant::now();
        let report = db.crash_and_recover(0.5, 0xC0FFEE).expect("recovery");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let verified = bank.verify().is_ok();
        assert!(verified, "E5 post-recovery verification failed");
        assert!(report.losers >= 4);
        let _ = recovery_ms;
        table.row(vec![
            mode_name(mode).into(),
            f(bytes_per_commit),
            report.analysis_records.to_string(),
            report.redo_applied.to_string(),
            report.logical_undos.to_string(),
            format!(
                "{}+{}+{}",
                f(report.analysis_us as f64 / 1000.0),
                f(report.redo_us as f64 / 1000.0),
                f(report.undo_us as f64 / 1000.0)
            ),
            verified.to_string(),
        ]);
    }
    table
}

/// E6 — immediate vs. deferred maintenance: writer cost, reader cost,
/// staleness, refresh spike.
pub fn e6(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E6: immediate vs deferred maintenance (4 insert threads)",
        &["variant", "inserts/s", "insert mean us", "staleness (pending)", "refresh ms"],
    );
    let threads = 4.min(cfg.max_threads);
    for (name, n_views, deferred) in [
        ("no view", 0usize, false),
        ("immediate escrow", 1, false),
        ("deferred", 1, true),
    ] {
        let sales =
            Sales::setup(SalesConfig { n_views, deferred, ..Default::default() }).expect("setup");
        let specs = [WorkerSpec {
            name: "insert".into(),
            threads,
            isolation: IsolationLevel::ReadCommitted,
            op: sales.insert_sale_op(),
        }];
        let res = run_for(&sales.db, &specs, cfg.cell);
        let (staleness, refresh_ms) = if deferred {
            let staleness = sales.db.deferred_staleness("sales_by_product_0").unwrap();
            let t0 = Instant::now();
            sales.db.refresh_deferred_view("sales_by_product_0").unwrap();
            (staleness, t0.elapsed().as_secs_f64() * 1000.0)
        } else {
            (0, 0.0)
        };
        sales.verify().expect("views consistent after E6 cell");
        table.row(vec![
            name.into(),
            f(res[0].throughput()),
            f(res[0].mean_latency_us()),
            staleness.to_string(),
            f(refresh_ms),
        ]);
    }
    table
}

/// E7 — the group come/go anomaly: ghost-based (paper) vs. eager deletion.
pub fn e7(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E7: group churn, 8 threads, 2 group-toggles per txn over 16 groups",
        &[
            "variant",
            "commits/s",
            "deadlocks",
            "abort rate",
            "cleanup removed",
            "view verified",
        ],
    );
    let threads = 8.min(cfg.max_threads);
    for (name, eager) in [("ghost+async cleanup", false), ("eager delete", true)] {
        let churn = Churn::setup(ChurnConfig { eager_group_delete: eager, ..Default::default() })
            .expect("setup");
        let specs = [WorkerSpec {
            name: "toggle".into(),
            threads,
            isolation: IsolationLevel::ReadCommitted,
            op: churn.toggle_op(2),
        }];
        let res = run_for(&churn.db, &specs, cfg.cell);
        let cleanup = churn.db.run_ghost_cleanup().expect("cleanup");
        let verified = churn.verify().is_ok();
        assert!(verified, "E7 verification failed ({name})");
        table.row(vec![
            name.into(),
            f(res[0].throughput()),
            res[0].deadlocks.to_string(),
            pct(res[0].abort_rate()),
            cleanup.removed.to_string(),
            verified.to_string(),
        ]);
    }
    table
}

/// E8 — per-DML maintenance overhead vs. number of indexed views.
pub fn e8(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E8: insert throughput vs #views maintained (4 threads)",
        &["views", "inserts/s", "vs 0 views"],
    );
    let threads = 4.min(cfg.max_threads);
    let mut base_tput = 0.0f64;
    for (label, n_views, join) in [
        ("0", 0usize, false),
        ("1", 1, false),
        ("2", 2, false),
        ("4", 4, false),
        ("8", 8, false),
        ("4+join", 4, true),
    ] {
        let sales = Sales::setup(SalesConfig { n_views, join_view: join, ..Default::default() })
            .expect("setup");
        let specs = [WorkerSpec {
            name: "insert".into(),
            threads,
            isolation: IsolationLevel::ReadCommitted,
            op: sales.insert_sale_op(),
        }];
        let res = run_for(&sales.db, &specs, cfg.cell);
        sales.verify().expect("views consistent after E8 cell");
        let tput = res[0].throughput();
        if n_views == 0 && !join {
            base_tput = tput;
        }
        table.row(vec![
            label.into(),
            f(tput),
            pct(tput / base_tput.max(1e-9)),
        ]);
    }
    table
}

/// One-row workload warmup used by the Criterion benches to amortize setup.
pub fn bench_bank(mode: MaintenanceMode, branches: i64) -> Bank {
    Bank::setup(BankConfig {
        mode,
        branches,
        accounts: (branches * 4).max(1024),
        ..Default::default()
    })
    .expect("bench setup")
}

/// A single deposit transaction against a prepared bank (bench body).
pub fn bench_deposit(bank: &Bank, seq: i64) {
    let db = &bank.db;
    let id = seq.rem_euclid(bank.cfg.accounts);
    db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
        db.update_with(txn, "accounts", &[Value::Int(id)], |r| {
            let mut out = r.clone();
            let bal = r.get(2).as_int().unwrap();
            out.set(2, Value::Int(bal + 1));
            out
        })
    })
    .expect("bench deposit");
}

/// A single sale insert against a prepared sales db (bench body).
pub fn bench_insert_sale(sales: &Sales, seq: i64) {
    let db = &sales.db;
    db.run_txn(IsolationLevel::ReadCommitted, 5, |txn| {
        db.insert(
            txn,
            "sales",
            row![seq, seq % sales.cfg.n_stores, seq % sales.cfg.n_products, 10i64],
        )
    })
    .expect("bench insert");
}

/// One deposit cell's throughput (commits/s) — the E1/E12 workload: 8 hot
/// view rows, 4-update transactions. `branches` sets the contention level
/// (the smoke gate narrows to 4 to sharpen the escrow/xlock separation).
fn deposit_tput(cfg: &ExpConfig, mode: MaintenanceMode, threads: usize, branches: i64) -> f64 {
    deposit_tput_cfg(cfg, BankConfig { mode, branches, ..Default::default() }, threads)
}

/// One deposit cell's throughput against an arbitrary bank configuration
/// (the E13/pipeline cells toggle `pipeline`/`elr` on top of the E1
/// workload).
fn deposit_tput_cfg(cfg: &ExpConfig, bank_cfg: BankConfig, threads: usize) -> f64 {
    let bank = Bank::setup(bank_cfg).expect("setup");
    let specs = [WorkerSpec {
        name: "deposit".into(),
        threads,
        isolation: IsolationLevel::ReadCommitted,
        op: bank.batch_deposit_op(4),
    }];
    let res = run_for(&bank.db, &specs, cfg.cell);
    bank.verify().expect("view consistent after deposit cell");
    res[0].throughput()
}

/// E12 — scaling profile of the sharded hot path (PR 5): the E1 workload,
/// but reporting each mode's *self-speedup* over its own 1-thread cell
/// next to the escrow/xlock ratio. With the version store, txn/touched
/// registries, ghost queue, and buffer-pool state all sharded, escrow's
/// remaining serialization points are the WAL tail and the hot view rows
/// themselves — so on a multicore host the escrow column should now rise
/// with threads instead of flatlining at the registry mutexes.
pub fn e12(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E12: sharded hot path — deposit commits/s and speedup vs 1 thread",
        &["threads", "escrow", "escrow vs 1t", "xlock", "xlock vs 1t", "escrow/xlock"],
    );
    let threads: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= cfg.max_threads).collect();
    let mut base = [1.0f64; 2];
    for &t in &threads {
        let mut tput = [0.0f64; 2];
        for (i, mode) in [MaintenanceMode::Escrow, MaintenanceMode::XLock].into_iter().enumerate() {
            tput[i] = deposit_tput(cfg, mode, t, 8);
        }
        if t == 1 {
            base = [tput[0].max(1e-9), tput[1].max(1e-9)];
        }
        table.row(vec![
            t.to_string(),
            f(tput[0]),
            format!("{:.2}x", tput[0] / base[0]),
            f(tput[1]),
            format!("{:.2}x", tput[1] / base[1]),
            f(tput[0] / tput[1].max(1e-9)),
        ]);
    }
    table
}

/// E13 — group commit and early lock release (PR 6): the E1 deposit
/// workload in escrow mode through three commit paths — the serial
/// per-committer `flush_to`, the leader-based group-commit pipeline, and
/// the pipeline with escrow locks released at log-append time (ELR). The
/// serial path forces one append+sync per committer, so under contention
/// the WAL is the whole story; the pipeline amortizes the sync over the
/// batch, and ELR additionally takes the escrow locks off the durability
/// wait, leaving only the commit-dependency rule between readers of
/// not-yet-durable increments and their predecessors.
/// E13 additionally re-runs every cell with a seeded per-sync device
/// latency injected into the log store: on a zero-latency in-memory WAL
/// the sync is nearly free and batching can only show its locking
/// effects, but with a realistic fsync cost the pipeline's one-sync-per-
/// batch amortization becomes the dominant term — which is the number
/// group commit exists to move.
pub fn e13(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E13: commit-path comparison — escrow deposit commits/s",
        &[
            "sync µs",
            "threads",
            "serial",
            "pipeline",
            "pipe vs serial",
            "pipeline+elr",
            "elr vs serial",
        ],
    );
    let threads: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= cfg.max_threads).collect();
    for sync_us in [0u64, 50] {
        for &t in &threads {
            let cell = |pipeline: bool, elr: bool| {
                deposit_tput_cfg(
                    cfg,
                    BankConfig {
                        mode: MaintenanceMode::Escrow,
                        pipeline,
                        elr,
                        sync_latency_us: sync_us,
                        ..Default::default()
                    },
                    t,
                )
            };
            let serial = cell(false, false);
            let piped = cell(true, false);
            let elr = cell(true, true);
            table.row(vec![
                sync_us.to_string(),
                t.to_string(),
                f(serial),
                f(piped),
                format!("{:.2}x", piped / serial.max(1e-9)),
                f(elr),
                format!("{:.2}x", elr / serial.max(1e-9)),
            ]);
        }
    }
    table
}

/// The escrow 16-thread E1 headline from `BENCH_PR5.json` — the baseline
/// the PR 6 pipeline gate compares against.
pub const PR5_ESCROW_16T: f64 = 25_838.3;

/// Outcome of the sync-latency pipeline gate: strict-serial vs pipelined
/// commit paths measured **on this host**, under a seeded 50 µs WAL sync
/// latency. Serialised into `BENCH_PR9.json` so the gate's verdict — and
/// whether it was actually enforced — is diffable across PRs.
#[derive(Clone, Copy, Debug)]
pub struct PipelineGate {
    /// Best-of-3 commits/s through the strict serial commit path.
    pub serial: f64,
    /// Best-of-3 commits/s through the group-commit pipeline.
    pub pipelined: f64,
    /// `pipelined / serial`.
    pub ratio: f64,
    /// Minimum ratio the gate demands.
    pub threshold: f64,
    /// Whether the verdict gates CI (always true — that is the point).
    pub enforced: bool,
    /// `ratio >= threshold`.
    pub pass: bool,
}

/// The PR 9 pipeline gate, replacing the vacuous PR 6 one. The old gate
/// compared against an absolute `BENCH_PR5.json` throughput recorded on a
/// 16-core box and therefore had to be skipped on small hosts — on the
/// 1-core CI runner it never gated anything. This one removes both
/// machine dependencies:
///
/// * **relative, same-host** — serial and pipelined cells run back to
///   back on the same machine; no cross-machine constant.
/// * **seeded sync cost** — with a 0-cost in-memory WAL sync there is
///   nothing for group commit to amortize, so the ratio measures noise.
///   A seeded 50 µs `FaultLogStore` sync latency restores the quantity
///   the pipeline exists to amortize. Batching then wins even on one
///   core: N concurrent committers pay N device waits serially but ~1
///   per batch pipelined, independent of true parallelism.
/// * **commit-path cell, not the bank cell** — a full deposit
///   transaction costs ~50 µs of CPU on a small host, the same as the
///   seeded device. A cell whose bottleneck is CPU work measures the
///   host, not the commit protocol (the original form of this gate sat
///   at ~0.9x forever for exactly that reason). The gate cell is the
///   commit path alone: N threads appending commit records and forcing
///   them through [`LogManager::flush_strict`] (serial) or
///   [`CommitPipeline::commit_wait`] (pipelined), over the same
///   latency-seeded store. ELR is an engine-level lock policy with no
///   WAL-layer analogue, so the pipelined arm is the bare pipeline —
///   which only makes the bar higher.
///
/// The serial baseline uses `flush_strict`, the same call the engine's
/// non-pipelined commit makes: the split-lock `flush_to` lets blocked
/// flushers piggyback on each other's syncs (accidental group commit),
/// which silently handed the baseline the very optimisation under test.
///
/// The threshold is 1.5x — very conservative against the ~batch-size
/// ratio a healthy pipeline delivers — and the gate is **always
/// enforced**.
pub fn pipeline_sync_gate(cfg: &ExpConfig) -> PipelineGate {
    const SYNC_US: u64 = 50;
    const THRESHOLD: f64 = 1.5;
    // Batching needs concurrent committers; never measure at 1 thread.
    let threads = 8.min(cfg.max_threads).max(2);
    // The microbench converges fast; cap the cell so the full-length
    // configuration does not spend seconds on a smoke gate.
    let cell = cfg.cell.min(Duration::from_millis(400));
    let best = |pipelined: bool| {
        (0..3)
            .map(|_| commit_path_tput(cell, threads, pipelined, SYNC_US))
            .fold(f64::MIN, f64::max)
    };
    let serial = best(false);
    let pipelined = best(true);
    let ratio = pipelined / serial.max(1e-9);
    PipelineGate {
        serial,
        pipelined,
        ratio,
        threshold: THRESHOLD,
        enforced: true,
        pass: ratio >= THRESHOLD,
    }
}

/// One commit-path cell for [`pipeline_sync_gate`]: `threads` committers
/// appending commit records to a WAL whose store charges a deterministic
/// `sync_us` per device sync, each forcing durability through either the
/// strict serial flush or the group-commit pipeline. Every ack is checked
/// against the flushed watermark — a protocol that acked without
/// durability would inflate its own score.
fn commit_path_tput(cell: Duration, threads: usize, pipelined: bool, sync_us: u64) -> f64 {
    use std::sync::atomic::AtomicBool;
    use txview_common::{Lsn, TxnId};
    use txview_storage::fault::FaultClock;
    use txview_txn::CommitPipeline;
    use txview_wal::{FaultLogStore, LogManager, RecordBody};

    let clock = FaultClock::new();
    let store = FaultLogStore::new(Arc::clone(&clock));
    store.set_sync_latency(sync_us, 0, 42);
    let log = Arc::new(LogManager::open(Box::new(store)).expect("open log"));
    let pipe = Arc::new(CommitPipeline::new(Arc::clone(&log), false));
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let (log, pipe, stop, total) =
                (Arc::clone(&log), Arc::clone(&pipe), Arc::clone(&stop), Arc::clone(&total));
            std::thread::spawn(move || {
                let mut txn = (i as u64) * 1_000_000 + 1;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let lsn = log.append(TxnId(txn), Lsn::NULL, RecordBody::Commit);
                    if pipelined {
                        pipe.commit_wait(TxnId(txn), lsn, None).expect("commit");
                    } else {
                        log.flush_strict(lsn).expect("commit");
                    }
                    assert!(log.flushed_lsn() >= lsn, "acked commit not durable");
                    txn += 1;
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(cell);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("committer");
    }
    total.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

/// The `--smoke-scale` CI gate: cheap evidence that the sharded hot path
/// actually scales, without running the full evaluation. Two checks:
///
/// * **self-scaling** — escrow at 8 threads must beat escrow at 1 thread
///   by ≥ 1.3x. Only enforced when the host has ≥ 4 hardware threads: on
///   a 1–2 core box extra writer threads cannot add throughput no matter
///   how well the engine shards, so the check would measure the machine,
///   not the code (it is still printed for the record).
/// * **escrow/xlock gap** — escrow must beat the X-lock baseline by ≥ 2x
///   at 8 threads. This holds even single-core (the gap comes from lock
///   conflicts and deadlock aborts, not parallelism), so it is always
///   enforced. The gate runs the 4-branch cell rather than E1's 8: halving
///   the hot rows roughly doubles the X-lock conflict rate while leaving
///   escrow untouched (its locks commute), pushing the true ratio to ~3x
///   (cf. E3) so short noisy cells still clear 2x with margin.
///
/// * **pipeline sync gate (PR 9, always enforced)** — the group-commit
///   pipeline must beat the strict serial commit path by ≥ 1.5x under a
///   seeded 50 µs WAL sync latency ([`pipeline_sync_gate`]). This
///   replaces the PR 6 gate, which compared against an absolute 16-core
///   baseline and was therefore skipped — i.e. vacuous — on the small CI
///   host.
/// * **PR 6 absolute ratio (informational)** — the old pipelined-16t /
///   `BENCH_PR5.json` comparison is still printed for cross-PR context,
///   but no longer gates: it measures the host as much as the code.
///
/// Returns `(report, pass)`; the binary exits nonzero on `!pass`.
pub fn smoke_scale(cfg: &ExpConfig) -> (String, bool) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let hi = 8.min(cfg.max_threads);
    // Best-of-3 per cell: a single short cell is dominated by scheduler
    // noise (especially on small hosts); the max across repeats is the
    // standard way to measure capability rather than interference.
    let best = |mode, threads| {
        (0..3).map(|_| deposit_tput(cfg, mode, threads, 4)).fold(f64::MIN, f64::max)
    };
    let escrow1 = best(MaintenanceMode::Escrow, 1);
    let escrow8 = best(MaintenanceMode::Escrow, hi);
    let xlock8 = best(MaintenanceMode::XLock, hi);
    let self_scale = escrow8 / escrow1.max(1e-9);
    let gap = escrow8 / xlock8.max(1e-9);

    let pipe16 = (0..3)
        .map(|_| {
            deposit_tput_cfg(
                cfg,
                BankConfig {
                    mode: MaintenanceMode::Escrow,
                    pipeline: true,
                    elr: true,
                    ..Default::default()
                },
                16.min(cfg.max_threads.max(1)),
            )
        })
        .fold(f64::MIN, f64::max);
    let pipe_ratio = pipe16 / PR5_ESCROW_16T;
    let sync_gate = pipeline_sync_gate(cfg);

    let scale_enforced = cores >= 4;
    let scale_ok = self_scale >= 1.3;
    let gap_ok = gap >= 2.0;
    let pass = gap_ok && sync_gate.pass && (scale_ok || !scale_enforced);

    let mut report = String::new();
    report.push_str(&format!(
        "smoke-scale gate (cell {:?}, {cores} hardware threads):\n",
        cfg.cell
    ));
    report.push_str(&format!(
        "  escrow {hi}t / escrow 1t  = {escrow8:>9.0} / {escrow1:>9.0} = {self_scale:.2}x \
         (need >= 1.30x, {})\n",
        if scale_enforced {
            if scale_ok { "PASS" } else { "FAIL" }
        } else {
            "informational: < 4 cores"
        }
    ));
    report.push_str(&format!(
        "  escrow {hi}t / xlock {hi}t  = {escrow8:>9.0} / {xlock8:>9.0} = {gap:.2}x \
         (need >= 2.00x, {})\n",
        if gap_ok { "PASS" } else { "FAIL" }
    ));
    report.push_str(&format!(
        "  pipeline / strict serial @50us sync = {:>9.0} / {:>9.0} = {:.2}x \
         (need >= {:.2}x, {})\n",
        sync_gate.pipelined,
        sync_gate.serial,
        sync_gate.ratio,
        sync_gate.threshold,
        if sync_gate.pass { "PASS" } else { "FAIL" }
    ));
    report.push_str(&format!(
        "  pipeline+elr 16t / PR5 16t = {pipe16:>9.0} / {PR5_ESCROW_16T:>9.0} = {pipe_ratio:.2}x \
         (informational: absolute cross-host baseline)\n"
    ));
    report.push_str(if pass { "smoke-scale: PASS\n" } else { "smoke-scale: FAIL\n" });
    (report, pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-run every experiment at minimal duration; correctness
    /// assertions live inside the experiment functions.
    #[test]
    fn all_experiments_smoke() {
        let cfg = ExpConfig { cell: Duration::from_millis(120), max_threads: 4 };
        for (name, table) in [
            ("e1", e1(&cfg)),
            ("e2", e2(&cfg)),
            ("e3", e3(&cfg)),
            ("e4", e4(&cfg)),
            ("e5", e5(&cfg)),
            ("e6", e6(&cfg)),
            ("e7", e7(&cfg)),
            ("e8", e8(&cfg)),
        ] {
            assert!(!table.is_empty(), "{name} produced rows");
        }
    }
}
