//! Crash-torture driver: sweep deterministic crash points over the bank +
//! churn workload in both maintenance modes, plus a batch of seeded random
//! fault schedules, and assert the recovery oracle at every point.
//!
//! ```text
//! run_torture [--quick] [--storm] [--seed N] [--points N] [--txns N] [--schedules N]
//! ```
//!
//! `--quick` is the CI budget: fixed seed, ~60 crash points per mode,
//! bounded well under a minute. Exit status is non-zero on any oracle
//! violation, so CI can gate on it directly.
//!
//! `--storm` switches to the transient-storm oracle instead: ≥ 55 distinct
//! transient-only schedules per maintenance mode (absorbed invisibly — no
//! lost acks, byte-identical committed state, no degradation) plus one
//! persistent-outage episode per mode (graceful DegradedReadOnly, reads
//! keep serving, writers rejected retryably, probe heals). Any violation
//! prints the failing seed and full schedule for replay.

use txview_engine::torture::{
    run_episode, run_persistent_episode, run_storm_sweep, run_sweep, SweepReport, TortureConfig,
};
use txview_engine::MaintenanceMode;
use txview_storage::fault::FaultSchedule;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn mode_name(mode: MaintenanceMode) -> &'static str {
    match mode {
        MaintenanceMode::Escrow => "escrow",
        MaintenanceMode::XLock => "xlock",
    }
}

fn print_sweep(mode: MaintenanceMode, r: &SweepReport) {
    println!(
        "  {:<6}  horizon {:>4} events  episodes {:>3}  distinct crash points {:>3}  \
         acked commits {:>4}  losers undone {:>3}  violations {}",
        mode_name(mode),
        r.horizon,
        r.episodes,
        r.crash_events.len(),
        r.acked_commits,
        r.losers_undone,
        r.violations.len(),
    );
    for (offset, v) in &r.violations {
        println!("    VIOLATION at crash offset {offset}: {v}");
    }
}

/// Transient-storm + persistent-outage oracle; returns the violation count.
fn run_storm(seed: u64, txns: usize, per_mode: usize) -> usize {
    println!("transient-storm sweep: seed {seed}, {per_mode} distinct schedules/mode, {txns} txns/episode");
    let mut failures = 0usize;
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_storm_sweep(&cfg, per_mode) {
            Ok(r) => {
                println!(
                    "  {:<6}  horizon {:>4}  distinct schedules {:>3}  faults injected {:>4}  \
                     io retries absorbed {:>4}  acked commits {:>5}  violations {}",
                    mode_name(mode),
                    r.horizon,
                    r.episodes,
                    r.transient_faults,
                    r.io_retries,
                    r.acked_commits,
                    r.violations.len(),
                );
                for (storm_seed, v) in &r.violations {
                    println!("    VIOLATION (storm seed {storm_seed}): {v}");
                    println!(
                        "    replay: FaultSchedule::storm({storm_seed}, {}) with cfg seed {seed}",
                        r.horizon
                    );
                }
                failures += r.violations.len();
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  STORM SWEEP ERROR: {e}", mode_name(mode));
            }
        }
    }
    println!("persistent-outage episodes:");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_persistent_episode(&cfg, 6) {
            Ok(r) => {
                println!(
                    "  {:<6}  commits before outage {:>3}  writes rejected {:>3}  \
                     degradations {}  heals {}  violations {}",
                    mode_name(mode),
                    r.commits_before_outage,
                    r.writes_rejected,
                    r.resilience.health_counters.degradations,
                    r.resilience.health_counters.heals,
                    r.violations.len(),
                );
                for v in &r.violations {
                    println!("    VIOLATION (outage at event 6, cfg seed {seed}): {v}");
                }
                failures += r.violations.len();
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  OUTAGE EPISODE ERROR: {e}", mode_name(mode));
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let storm = args.iter().any(|a| a == "--storm");
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let points = parse_flag(&args, "--points").unwrap_or(if quick { 60 } else { 120 }) as usize;
    let txns = parse_flag(&args, "--txns").unwrap_or(if quick { 24 } else { 36 }) as usize;
    let schedules = parse_flag(&args, "--schedules").unwrap_or(if quick { 10 } else { 40 });

    if storm {
        // ≥ 110 distinct transient schedules across the two modes by
        // default (55 each), regardless of --quick.
        let per_mode = parse_flag(&args, "--schedules").unwrap_or(55) as usize;
        let failures = run_storm(seed, txns, per_mode);
        println!("storm total: {failures} violations");
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    println!(
        "crash-torture: seed {seed}, {points} crash points/mode, {txns} txns/episode, \
         {schedules} random schedules"
    );

    let mut failures = 0usize;
    let mut total_points = 0usize;

    // Part 1: systematic crash-point sweep, both maintenance modes.
    println!("crash-point sweep:");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_sweep(&cfg, points) {
            Ok(r) => {
                failures += r.violations.len();
                total_points += r.crash_events.len();
                print_sweep(mode, &r);
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  SWEEP ERROR: {e}", mode_name(mode));
            }
        }
    }

    // Part 2: seeded random schedules (transients + torn writes + crash),
    // escrow mode, one derived seed per schedule.
    println!("random fault schedules:");
    let mut sched_violations = 0usize;
    let mut crashes_fired = 0usize;
    for i in 0..schedules {
        let cfg = TortureConfig { txns, seed: seed ^ (i + 1), ..Default::default() };
        let schedule = FaultSchedule::random(seed.wrapping_mul(31).wrapping_add(i), 120);
        match run_episode(&cfg, &schedule) {
            Ok(ep) => {
                if ep.crash_event.is_some() {
                    crashes_fired += 1;
                }
                for v in &ep.violations {
                    println!("  VIOLATION (schedule {i}): {v}");
                }
                sched_violations += ep.violations.len();
            }
            Err(e) => {
                sched_violations += 1;
                println!("  EPISODE ERROR (schedule {i}): {e}");
            }
        }
    }
    failures += sched_violations;
    println!(
        "  {schedules} schedules, {crashes_fired} crashes fired, {sched_violations} violations"
    );

    println!(
        "total: {total_points} distinct crash points swept across modes, {failures} violations"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
