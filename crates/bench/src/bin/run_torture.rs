//! Crash-torture driver: sweep deterministic crash points over the bank +
//! churn workload in both maintenance modes, plus a batch of seeded random
//! fault schedules, and assert the recovery oracle at every point.
//!
//! ```text
//! run_torture [--quick] [--storm] [--metrics] [--replication] [--seed N] [--points N] [--txns N] [--schedules N]
//! ```
//!
//! `--quick` is the CI budget: fixed seed, ~60 crash points per mode,
//! bounded well under a minute. Exit status is non-zero on any oracle
//! violation, so CI can gate on it directly. The default sweep also runs
//! the derived-view chain scenarios: a depth-2 chain crash sweep per
//! maintenance mode, targeted crashes between cascade levels of a depth-4
//! chain (the `view.cascade.level` probe), and chain-bearing random fault
//! schedules — all judged by the chain oracle (each level equals both a
//! recomputation from base and a fold of its immediate parent; the
//! terminal rollup conserves total balance).
//!
//! `--storm` switches to the transient-storm oracle instead: ≥ 55 distinct
//! transient-only schedules per maintenance mode (absorbed invisibly — no
//! lost acks, byte-identical committed state, no degradation) plus one
//! persistent-outage episode per mode (graceful DegradedReadOnly, reads
//! keep serving, writers rejected retryably, probe heals). Any violation
//! prints the failing seed and full schedule for replay.
//!
//! `--metrics` switches to the metrics-determinism oracle: the fault-free
//! torture workload runs twice with the engine's observability clock
//! driven by the deterministic event counter, and the two
//! `metrics_snapshot()` results must be structurally identical (plus
//! internally consistent and non-trivial). Any divergence or validation
//! failure exits non-zero and prints the offending snapshot section.
//!
//! `--replication` switches to the WAL-shipping replication sweep: leader
//! crashes (with promotion + stale-leader fencing/rejoin drills), follower
//! crashes mid-replay, partition/lag storms, and mid-batch group-commit
//! leader deaths, each judged by the replication oracle (historical-state
//! equality at the watermark, sync-acked durability across failover,
//! promotion == recovery of exactly the shipped prefix, byte-identical
//! convergence). Full mode must sweep ≥ 100 distinct points; `--quick` is
//! the bounded CI smoke.
//!
//! `--interleave` switches to the deterministic interleaving explorer:
//! exhaustive DFS over every schedule of the five canned concurrency
//! scenarios in both maintenance modes, plus seeded PCT sampling of the
//! larger 3-transaction fixtures, all judged by the serializability
//! oracle. `--quick` bounds the DFS per scenario; `--seed` seeds the PCT
//! sampler. A violation prints its scenario and decision list and can be
//! re-run alone with `--interleave --replay <scenario> --choices a,b,c`.

use txview_engine::interleave;
use txview_engine::repl::{run_repl_metrics_check, run_replication_sweep};
use txview_engine::torture::{
    run_cascade_probe_sweep, run_episode, run_metrics_check, run_persistent_episode,
    run_storm_sweep, run_sweep, SweepReport, TortureConfig,
};
use txview_engine::MaintenanceMode;
use txview_storage::fault::FaultSchedule;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn mode_name(mode: MaintenanceMode) -> &'static str {
    match mode {
        MaintenanceMode::Escrow => "escrow",
        MaintenanceMode::XLock => "xlock",
    }
}

fn print_sweep(mode: MaintenanceMode, r: &SweepReport) {
    println!(
        "  {:<6}  horizon {:>4} events  episodes {:>3}  distinct crash points {:>3}  \
         acked commits {:>4}  losers undone {:>3}  violations {}",
        mode_name(mode),
        r.horizon,
        r.episodes,
        r.crash_events.len(),
        r.acked_commits,
        r.losers_undone,
        r.violations.len(),
    );
    for (offset, v) in &r.violations {
        println!("    VIOLATION at crash offset {offset}: {v}");
    }
}

/// Transient-storm + persistent-outage oracle; returns the violation count.
fn run_storm(seed: u64, txns: usize, per_mode: usize) -> usize {
    println!("transient-storm sweep: seed {seed}, {per_mode} distinct schedules/mode, {txns} txns/episode");
    let mut failures = 0usize;
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_storm_sweep(&cfg, per_mode) {
            Ok(r) => {
                println!(
                    "  {:<6}  horizon {:>4}  distinct schedules {:>3}  faults injected {:>4}  \
                     io retries absorbed {:>4}  acked commits {:>5}  violations {}",
                    mode_name(mode),
                    r.horizon,
                    r.episodes,
                    r.transient_faults,
                    r.io_retries,
                    r.acked_commits,
                    r.violations.len(),
                );
                for (storm_seed, v) in &r.violations {
                    println!("    VIOLATION (storm seed {storm_seed}): {v}");
                    println!(
                        "    replay: FaultSchedule::storm({storm_seed}, {}) with cfg seed {seed}",
                        r.horizon
                    );
                }
                failures += r.violations.len();
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  STORM SWEEP ERROR: {e}", mode_name(mode));
            }
        }
    }
    println!("persistent-outage episodes:");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_persistent_episode(&cfg, 6) {
            Ok(r) => {
                println!(
                    "  {:<6}  commits before outage {:>3}  writes rejected {:>3}  \
                     degradations {}  heals {}  violations {}",
                    mode_name(mode),
                    r.commits_before_outage,
                    r.writes_rejected,
                    r.resilience.health_counters.degradations,
                    r.resilience.health_counters.heals,
                    r.violations.len(),
                );
                for v in &r.violations {
                    println!("    VIOLATION (outage at event 6, cfg seed {seed}): {v}");
                }
                failures += r.violations.len();
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  OUTAGE EPISODE ERROR: {e}", mode_name(mode));
            }
        }
    }
    failures
}

/// Metrics-determinism oracle; returns the violation count.
fn run_metrics(seed: u64, txns: usize) -> usize {
    println!(
        "metrics-determinism check: seed {seed}, {txns} txns/run, two identically-seeded runs \
         per maintenance mode, event-tick observability clock"
    );
    let mut failures = 0usize;
    let mut configs: Vec<(String, TortureConfig)> = [MaintenanceMode::Escrow, MaintenanceMode::XLock]
        .into_iter()
        .map(|mode| {
            (mode_name(mode).to_string(), TortureConfig { mode, txns, seed, ..Default::default() })
        })
        .collect();
    // The group-commit pipeline (and ELR) must not leak wall time into any
    // metric either — its batch/park instruments ride the same tick clock.
    for elr in [false, true] {
        configs.push((
            if elr { "pipe+elr".into() } else { "pipe".into() },
            TortureConfig {
                mode: MaintenanceMode::Escrow,
                txns,
                seed,
                pipeline: true,
                elr,
                ..Default::default()
            },
        ));
    }
    // The derived-view chain must surface (deterministic) view.graph.*
    // instruments: enqueue/coalesce/refresh counters and flush histograms.
    configs.push((
        "chain".into(),
        TortureConfig {
            mode: MaintenanceMode::Escrow,
            txns,
            seed,
            chain_depth: 2,
            ..Default::default()
        },
    ));
    // Replication metrics ride the same determinism contract: the merged
    // repl.* snapshot (leader stream + follower + channel) must be
    // byte-identical across identically-seeded runs.
    match run_repl_metrics_check(&TortureConfig { txns, seed, ..Default::default() }) {
        Ok(r) => {
            println!(
                "  {:<8}  frames shipped {:>4}  records applied {:>5}  acks {:>4}  \
                 lag at convergence {:>2}  violations {}",
                "repl",
                r.snapshot.counter_value("repl.leader.frames_shipped").unwrap_or(0),
                r.snapshot.counter_value("repl.follower.records_applied").unwrap_or(0),
                r.snapshot.counter_value("repl.follower.acks_sent").unwrap_or(0),
                r.snapshot.gauge_value("repl.leader.lag_lsns").unwrap_or(-1),
                r.violations.len(),
            );
            for v in &r.violations {
                println!("    VIOLATION: {v}");
            }
            failures += r.violations.len();
        }
        Err(e) => {
            failures += 1;
            println!("  {:<8}  REPL METRICS CHECK ERROR: {e}", "repl");
        }
    }
    for (label, cfg) in configs {
        match run_metrics_check(&cfg) {
            Ok(r) => {
                println!(
                    "  {:<8}  commits {:>4}  lock acquisitions {:>5}  wal records {:>5}  \
                     pipeline batches {:>4}  violations {}",
                    label,
                    r.snapshot.counter_value("txn.commits").unwrap_or(0),
                    r.snapshot.counter_value("lock.acquired").unwrap_or(0),
                    r.snapshot.counter_value("wal.appended_records").unwrap_or(0),
                    r.snapshot
                        .hist_value("txn.pipeline.batch_commits")
                        .map(|h| h.count())
                        .unwrap_or(0),
                    r.violations.len(),
                );
                for v in &r.violations {
                    println!("    VIOLATION: {v}");
                }
                failures += r.violations.len();
                if label == "chain" {
                    let refreshes =
                        r.snapshot.counter_value("view.graph.refreshes").unwrap_or(0);
                    let enqueues = r.snapshot.counter_value("view.graph.enqueues").unwrap_or(0);
                    println!(
                        "  {:<8}  view.graph: enqueues {:>4}  coalesce hits {:>4}  \
                         refreshes {:>4}  max depth {:>2}",
                        "",
                        enqueues,
                        r.snapshot.counter_value("view.graph.coalesce_hits").unwrap_or(0),
                        refreshes,
                        r.snapshot.gauge_value("view.graph.max_depth").unwrap_or(-1),
                    );
                    if refreshes == 0 || enqueues == 0 {
                        println!("    VIOLATION: chain run surfaced no view.graph.* activity");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                failures += 1;
                println!("  {:<8}  METRICS CHECK ERROR: {e}", label);
            }
        }
    }
    failures
}

/// WAL-shipping replication sweep: leader/follower crashes, partitions,
/// and mid-batch pipeline deaths; returns the violation count. `floor` is
/// the minimum distinct crash/partition points the sweep must cover.
fn run_replication(seed: u64, txns: usize, points: usize, floor: usize) -> usize {
    println!(
        "replication sweep: seed {seed}, {txns} txns/episode, budget {points} points \
         (leader crashes + follower crashes + partitions + mid-batch pipeline deaths)"
    );
    let cfg = TortureConfig { txns, seed, ..Default::default() };
    let mut failures = 0usize;
    match run_replication_sweep(&cfg, points) {
        Ok(r) => {
            println!(
                "  horizons: leader {:>4} events, follower {:>4} events",
                r.horizon, r.follower_horizon
            );
            println!(
                "  episodes {:>3}  distinct points {:>3} (leader {:>3}, follower {:>3}, \
                 partition {:>2}, mid-batch {:>2})",
                r.episodes,
                r.distinct_points,
                r.leader_crash_points,
                r.follower_crash_points,
                r.partition_points,
                r.mid_batch_points,
            );
            println!(
                "  promotions {:>3}  fences {:>2}  reconnects {:>3}  snapshot fallbacks {:>2}  \
                 sync-acked commits {:>4}  mid-batch acked served {:>3}  violations {}",
                r.promotions,
                r.fences,
                r.reconnects,
                r.snapshot_fallbacks,
                r.repl_acked_commits,
                r.mid_batch_acked_survived,
                r.violations.len(),
            );
            for (label, v) in &r.violations {
                println!("    VIOLATION ({label}): {v}");
            }
            failures += r.violations.len();
            if r.distinct_points < floor {
                println!(
                    "  COVERAGE: only {} distinct points, floor is {floor}",
                    r.distinct_points
                );
                failures += 1;
            }
            if r.mid_batch_points == 0 {
                println!("  COVERAGE: no mid-batch pipeline leader death exercised");
                failures += 1;
            }
            if r.mid_batch_acked_survived == 0 {
                println!(
                    "  COVERAGE: no mid-batch episode served its sync-acked commits \
                     after promotion"
                );
                failures += 1;
            }
            if r.fences == 0 {
                println!("  COVERAGE: no stale leader was fenced by a rejoin drill");
                failures += 1;
            }
        }
        Err(e) => {
            failures += 1;
            println!("  REPLICATION SWEEP ERROR: {e}");
        }
    }
    failures
}

/// All named interleaving fixtures (both maintenance modes).
fn interleave_fixtures() -> Vec<interleave::Scenario> {
    let mut scenarios = Vec::new();
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        scenarios.extend(interleave::canned_scenarios(mode));
        scenarios.push(interleave::deadlock_cycle3(mode));
    }
    scenarios.push(interleave::fairness_scenario());
    scenarios.extend(interleave::pipeline_scenarios());
    scenarios.extend(interleave::chain_scenarios());
    scenarios
}

fn print_interleave_violations(name: &str, violations: &[(Vec<usize>, String)]) {
    for (choices, msg) in violations {
        println!("    VIOLATION: {msg}");
        let list: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
        println!(
            "    replay: run_torture --interleave --replay {name} --choices {}",
            if list.is_empty() { "-".to_string() } else { list.join(",") }
        );
    }
}

/// Interleaving explorer; returns the violation count.
fn run_interleave(quick: bool, seed: u64) -> usize {
    let dfs_cap: u64 = if quick { 500 } else { 200_000 };
    let pct_runs: u64 = if quick { 25 } else { 150 };
    let mut failures = 0usize;
    let mut schedules = 0u64;

    println!(
        "interleave explorer: DFS cap {dfs_cap}/scenario, PCT seed {seed} ({pct_runs} runs), \
         serializability oracle on every schedule"
    );
    // Admitted-schedule counts on the hot-group fixture are a determinism
    // canary: the yield-point set and lock admission order fully determine
    // them, so any drift means the explored protocol changed (a new yield
    // point, a lost one, or different lock scheduling) and the oracle's
    // coverage claims need re-review. Exact values, asserted in full mode.
    let expected_schedules: &[(&str, u64)] = &[
        ("escrow_vs_escrow/Escrow", 12_870),
        ("escrow_vs_escrow/XLock", 5_082),
        // Pipeline fixtures (group commit + ELR). The two writers of
        // two_batch_overlap touch disjoint groups, so its elr flag cannot
        // change the tree — identical counts are themselves a canary.
        ("two_batch_overlap/Escrow/pipeline", 137_566),
        ("two_batch_overlap/Escrow/elr", 137_566),
        ("elr_read_dependency/Escrow/pipeline", 556),
        ("elr_read_dependency/Escrow/elr", 1_141),
        // Derived-chain fixture: reader of the mid-chain view vs an
        // in-flight cascade, with the pipeline and ELR on.
        ("cascade_elr/Escrow/elr", 4_420),
    ];

    println!("exhaustive DFS (five scenarios x two maintenance modes):");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        for sc in interleave::canned_scenarios(mode) {
            let r = interleave::explore_dfs(&sc, dfs_cap);
            println!(
                "  {:<42} schedules {:>6}{}  max decisions {:>3}  deadlocked {:>5}  violations {}",
                sc.name,
                r.schedules,
                if r.truncated { "+" } else { " " },
                r.max_decisions,
                r.aborted_schedules,
                r.violations.len(),
            );
            print_interleave_violations(&sc.name, &r.violations);
            failures += r.violations.len();
            schedules += r.schedules;
            if !quick {
                if let Some(&(_, want)) =
                    expected_schedules.iter().find(|(name, _)| *name == sc.name)
                {
                    if r.schedules != want {
                        println!(
                            "  DRIFT: {} admitted {} schedules, expected {want}",
                            sc.name, r.schedules
                        );
                        failures += 1;
                    }
                }
            }
        }
    }

    println!("exhaustive DFS (pipeline/ELR fixtures, elr off and on):");
    for sc in interleave::pipeline_scenarios() {
        // The 3-committer handoff race has an astronomically large tree;
        // explore a deterministic prefix. The 2-txn fixtures run to
        // completion and are gated exactly above.
        let cap = if sc.name.starts_with("leader_handoff_race") {
            if quick { 500 } else { 20_000 }
        } else {
            dfs_cap
        };
        let r = interleave::explore_dfs(&sc, cap);
        println!(
            "  {:<42} schedules {:>6}{}  max decisions {:>3}  followers {:>6}  deps {:>5}  violations {}",
            sc.name,
            r.schedules,
            if r.truncated { "+" } else { " " },
            r.max_decisions,
            r.follower_wait_schedules,
            r.dep_schedules,
            r.violations.len(),
        );
        print_interleave_violations(&sc.name, &r.violations);
        failures += r.violations.len();
        schedules += r.schedules;
        if !quick {
            if let Some(&(_, want)) =
                expected_schedules.iter().find(|(name, _)| *name == sc.name)
            {
                if r.schedules != want {
                    println!(
                        "  DRIFT: {} admitted {} schedules, expected {want}",
                        sc.name, r.schedules
                    );
                    failures += 1;
                }
            }
            // Non-vacuity: the pipeline fixtures must actually exercise
            // the seams they were built for.
            let wants_followers = !sc.name.starts_with("elr_read_dependency");
            if wants_followers && r.follower_wait_schedules == 0 {
                println!("  VACUOUS: {} explored no follower parks", sc.name);
                failures += 1;
            }
            if sc.name == "elr_read_dependency/Escrow/elr" && r.dep_schedules == 0 {
                println!("  VACUOUS: {} recorded no ELR dependency edges", sc.name);
                failures += 1;
            }
        }
    }

    println!("exhaustive DFS (derived-chain fixtures):");
    for sc in interleave::chain_scenarios() {
        // The depth-race tree is enormous (each commit's cascade flush
        // adds escrow acquires at every chain level): explore a
        // deterministic prefix. The ELR reader fixture runs to completion
        // and is gated exactly above.
        let cap = if sc.name.starts_with("chain_commit_race") {
            if quick { 500 } else { 4_000 }
        } else {
            dfs_cap
        };
        let r = interleave::explore_dfs(&sc, cap);
        println!(
            "  {:<42} schedules {:>6}{}  max decisions {:>3}  flushes {:>6}  deps {:>5}  violations {}",
            sc.name,
            r.schedules,
            if r.truncated { "+" } else { " " },
            r.max_decisions,
            r.cascade_flush_schedules,
            r.dep_schedules,
            r.violations.len(),
        );
        print_interleave_violations(&sc.name, &r.violations);
        failures += r.violations.len();
        schedules += r.schedules;
        // Non-vacuity: both transactions write through the chain, so every
        // committing schedule must flush a non-empty cascade queue.
        if r.cascade_flush_schedules != r.schedules {
            println!(
                "  VACUOUS: {} flushed cascades in only {} of {} schedules",
                sc.name, r.cascade_flush_schedules, r.schedules
            );
            failures += 1;
        }
        if !quick {
            if let Some(&(_, want)) =
                expected_schedules.iter().find(|(name, _)| *name == sc.name)
            {
                if r.schedules != want {
                    println!(
                        "  DRIFT: {} admitted {} schedules, expected {want}",
                        sc.name, r.schedules
                    );
                    failures += 1;
                }
            }
            if sc.name == "cascade_elr/Escrow/elr" && r.dep_schedules != 2_181 {
                println!(
                    "  DRIFT: {} recorded ELR dependencies in {} schedules, expected 2181",
                    sc.name, r.dep_schedules
                );
                failures += 1;
            }
        }
    }

    println!("PCT sampling (3-txn fixtures, {pct_runs} seeded runs each):");
    for sc in [
        interleave::fairness_scenario(),
        interleave::deadlock_cycle3(MaintenanceMode::Escrow),
        interleave::deadlock_cycle3(MaintenanceMode::XLock),
        interleave::leader_handoff_race(false),
        interleave::leader_handoff_race(true),
    ] {
        let r = interleave::explore_pct(&sc, seed, pct_runs, 3);
        println!(
            "  {:<42} schedules {:>6}   max decisions {:>3}  deadlocked {:>5}  violations {}",
            sc.name,
            r.schedules,
            r.max_decisions,
            r.aborted_schedules,
            r.violations.len(),
        );
        print_interleave_violations(&sc.name, &r.violations);
        failures += r.violations.len();
        schedules += r.schedules;
    }

    println!("interleave total: {schedules} schedules explored, {failures} violations");
    failures
}

/// Replay one schedule by scenario name and decision list ("-" = empty).
fn run_interleave_replay(name: &str, choices_arg: Option<&String>) -> usize {
    let choices: Vec<usize> = match choices_arg {
        Some(s) if s != "-" => s
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| p.parse().expect("--choices must be comma-separated integers"))
            .collect(),
        _ => Vec::new(),
    };
    let Some(sc) = interleave_fixtures().into_iter().find(|s| s.name == name) else {
        println!("unknown scenario {name:?}; known:");
        for s in interleave_fixtures() {
            println!("  {}", s.name);
        }
        return 1;
    };
    let (ep, violations) = interleave::replay(&sc, &choices);
    println!("replay {name} choices {choices:?}:");
    println!("  decisions: {:?}", ep.decisions);
    for ev in &ep.history {
        println!("  seq {:>3}  w{} txn {}  {:?}", ev.seq, ev.worker, ev.txn, ev.kind);
    }
    for w in &ep.workers {
        println!("  txn {} -> {:?}", w.txn, w.outcome);
    }
    println!("  base: {:?}", ep.base_dump);
    println!("  view: {:?}", ep.view_dump);
    for v in &violations {
        println!("  VIOLATION: {v}");
    }
    println!("  {} violations", violations.len());
    violations.len()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let storm = args.iter().any(|a| a == "--storm");
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let points = parse_flag(&args, "--points").unwrap_or(if quick { 60 } else { 120 }) as usize;
    let txns = parse_flag(&args, "--txns").unwrap_or(if quick { 24 } else { 36 }) as usize;
    let schedules = parse_flag(&args, "--schedules").unwrap_or(if quick { 10 } else { 40 });

    if args.iter().any(|a| a == "--interleave") {
        let failures = if let Some(i) = args.iter().position(|a| a == "--replay") {
            let name = args.get(i + 1).expect("--replay needs a scenario name").clone();
            let choices = args
                .iter()
                .position(|a| a == "--choices")
                .and_then(|j| args.get(j + 1));
            run_interleave_replay(&name, choices)
        } else {
            run_interleave(quick, seed)
        };
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--replication") {
        // Full mode must clear the 100-distinct-point acceptance floor;
        // quick mode is the bounded CI smoke with a proportional floor.
        let budget = parse_flag(&args, "--points")
            .unwrap_or(if quick { 48 } else { 130 }) as usize;
        let floor = if quick { 32 } else { 100 };
        let failures = run_replication(seed, txns, budget, floor);
        println!("replication total: {failures} violations");
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--metrics") {
        let failures = run_metrics(seed, txns);
        println!("metrics total: {failures} violations");
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    if storm {
        // ≥ 110 distinct transient schedules across the two modes by
        // default (55 each), regardless of --quick.
        let per_mode = parse_flag(&args, "--schedules").unwrap_or(55) as usize;
        let failures = run_storm(seed, txns, per_mode);
        println!("storm total: {failures} violations");
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    println!(
        "crash-torture: seed {seed}, {points} crash points/mode, {txns} txns/episode, \
         {schedules} random schedules"
    );

    let mut failures = 0usize;
    let mut total_points = 0usize;

    // Part 1: systematic crash-point sweep, both maintenance modes.
    println!("crash-point sweep:");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, ..Default::default() };
        match run_sweep(&cfg, points) {
            Ok(r) => {
                failures += r.violations.len();
                total_points += r.crash_events.len();
                print_sweep(mode, &r);
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  SWEEP ERROR: {e}", mode_name(mode));
            }
        }
    }

    // Part 2: derived-chain cascade torture — the same crash-point sweep
    // with a view chain (bank_balance → identity level → global rollup)
    // stacked on the bank view, judged by the chain oracle (every level
    // equals recomputation from base *and* a fold of its immediate parent,
    // and the terminal rollup conserves total balance). Then targeted
    // crashes exactly between cascade levels via the mid-flush probe.
    println!("derived-chain sweep (chain depth 2):");
    let chain_points = points / 2;
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns, seed, chain_depth: 2, ..Default::default() };
        match run_sweep(&cfg, chain_points) {
            Ok(r) => {
                failures += r.violations.len();
                total_points += r.crash_events.len();
                print_sweep(mode, &r);
            }
            Err(e) => {
                failures += 1;
                println!("  {:<6}  CHAIN SWEEP ERROR: {e}", mode_name(mode));
            }
        }
    }
    println!("mid-cascade crash probes (chain depth 4):");
    {
        let per_probe = if quick { 6 } else { 16 };
        let cfg = TortureConfig { txns, seed, chain_depth: 4, ..Default::default() };
        match run_cascade_probe_sweep(&cfg, per_probe) {
            Ok(r) => {
                for (name, ran) in &r.per_probe {
                    println!("  {:<20} {:>3} episodes", name, ran);
                }
                println!(
                    "  {} episodes crashed between cascade levels, acked commits {}, \
                     violations {}",
                    r.episodes,
                    r.acked_commits,
                    r.violations.len()
                );
                for (offset, v) in &r.violations {
                    println!("    VIOLATION at crash offset {offset}: {v}");
                }
                failures += r.violations.len();
                if r.episodes == 0 {
                    println!("  COVERAGE: mid-cascade probe never fired");
                    failures += 1;
                }
                total_points += r.episodes;
            }
            Err(e) => {
                failures += 1;
                println!("  CASCADE PROBE SWEEP ERROR: {e}");
            }
        }
    }

    // Part 3: seeded random schedules (transients + torn writes + crash),
    // escrow mode, one derived seed per schedule.
    println!("random fault schedules:");
    let mut sched_violations = 0usize;
    let mut crashes_fired = 0usize;
    for i in 0..schedules {
        // Every third schedule carries the depth-2 chain so random fault
        // storms also hit the cascade path.
        let chain_depth = if i % 3 == 0 { 2 } else { 0 };
        let cfg =
            TortureConfig { txns, seed: seed ^ (i + 1), chain_depth, ..Default::default() };
        let schedule = FaultSchedule::random(seed.wrapping_mul(31).wrapping_add(i), 120);
        match run_episode(&cfg, &schedule) {
            Ok(ep) => {
                if ep.crash_event.is_some() {
                    crashes_fired += 1;
                }
                for v in &ep.violations {
                    println!("  VIOLATION (schedule {i}): {v}");
                }
                sched_violations += ep.violations.len();
            }
            Err(e) => {
                sched_violations += 1;
                println!("  EPISODE ERROR (schedule {i}): {e}");
            }
        }
    }
    failures += sched_violations;
    println!(
        "  {schedules} schedules, {crashes_fired} crashes fired, {sched_violations} violations"
    );

    println!(
        "total: {total_points} distinct crash points swept across modes, {failures} violations"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
