//! Regenerates every table/figure of the reconstructed evaluation.
//!
//! ```text
//! cargo run -p txview-bench --release --bin run_experiments -- all
//! cargo run -p txview-bench --release --bin run_experiments -- e1 e4
//! cargo run -p txview-bench --release --bin run_experiments -- --quick all
//! cargo run -p txview-bench --release --bin run_experiments -- --metrics e1
//! cargo run -p txview-bench --release --bin run_experiments -- snapshot
//! ```
//!
//! `snapshot` runs the E1/E2 headline cells and writes throughput +
//! commit-latency percentiles to `BENCH_PR5.json` (override with
//! `--out <path>`). `snapshot-pr6` additionally sweeps the group-commit
//! pipeline (serial vs pipelined vs pipelined+ELR) and writes
//! `BENCH_PR6.json`. `snapshot-pr7` measures the replication stack —
//! follower read throughput vs held lag and promotion time vs shipped
//! prefix — and writes `BENCH_PR7.json`. `snapshot-pr8` sweeps commit
//! throughput against derived-chain depth (coalesced vs eager cascade
//! propagation) and writes `BENCH_PR8.json`. `snapshot-pr9` runs the E16
//! open-loop latency sweep over real TCP (serial vs pipelined+ELR commit
//! paths under a seeded 50 µs WAL sync) plus the enforced pipeline gate,
//! and writes `BENCH_PR9.json`. `snapshot-pr10` runs E17 — hash vs
//! B-tree point reads and the mixed snapshot-scan HTAP cell — and writes
//! `BENCH_PR10.json`. `--metrics` additionally runs a short
//! contended deposit cell and prints the engine's full metrics table.

use txview_bench::{
    e1, e11, e12, e13, e2, e3, e4, e5, e6, e7, e8, metrics_demo, smoke_scale, snapshot_json,
    snapshot_pr10_json, snapshot_pr6_json, snapshot_pr7_json, snapshot_pr8_json,
    snapshot_pr9_json, ExpConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    if args.iter().any(|a| a == "--smoke-scale") {
        // CI scaling gate: see `smoke_scale` for what is enforced where.
        let cfg = if quick { ExpConfig::quick() } else { ExpConfig::default() };
        let (report, pass) = smoke_scale(&cfg);
        print!("{report}");
        std::process::exit(if pass { 0 } else { 1 });
    }
    let want_pr6 = args.iter().any(|a| a == "snapshot-pr6");
    let want_pr7 = args.iter().any(|a| a == "snapshot-pr7");
    let want_pr8 = args.iter().any(|a| a == "snapshot-pr8");
    let want_pr9 = args.iter().any(|a| a == "snapshot-pr9");
    let want_pr10 = args.iter().any(|a| a == "snapshot-pr10");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if want_pr10 {
                "BENCH_PR10.json".to_string()
            } else if want_pr9 {
                "BENCH_PR9.json".to_string()
            } else if want_pr8 {
                "BENCH_PR8.json".to_string()
            } else if want_pr7 {
                "BENCH_PR7.json".to_string()
            } else if want_pr6 {
                "BENCH_PR6.json".to_string()
            } else {
                "BENCH_PR5.json".to_string()
            }
        });
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::default() };

    // Positional selections; flag values (the path after --out) are not
    // experiment names.
    let mut wanted: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        wanted.push(a.to_lowercase());
    }
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    if wanted.iter().any(|w| {
        w == "snapshot"
            || w == "snapshot-pr6"
            || w == "snapshot-pr7"
            || w == "snapshot-pr8"
            || w == "snapshot-pr9"
            || w == "snapshot-pr10"
    }) {
        println!("writing bench snapshot (cell {:?}) to {out_path} ...", cfg.cell);
        let t0 = std::time::Instant::now();
        let json = if want_pr10 {
            snapshot_pr10_json(&cfg)
        } else if want_pr9 {
            snapshot_pr9_json(&cfg)
        } else if want_pr8 {
            snapshot_pr8_json(&cfg)
        } else if want_pr7 {
            snapshot_pr7_json(&cfg)
        } else if want_pr6 {
            snapshot_pr6_json(&cfg)
        } else {
            snapshot_json(&cfg)
        };
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        print!("{json}");
        println!("[snapshot done in {:.1}s]", t0.elapsed().as_secs_f64());
        if metrics {
            print!("{}", metrics_demo(&cfg));
        }
        return;
    }

    type ExpFn = fn(&ExpConfig) -> txview_workload::report::Table;
    let experiments: [(&str, ExpFn); 11] = [
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
    ];

    println!(
        "txview experiment harness — cell duration {:?}{}",
        cfg.cell,
        if quick { " (quick mode)" } else { "" }
    );
    let mut ran = 0;
    for (name, exp) in experiments {
        if run_all || wanted.iter().any(|w| w == name) {
            let t0 = std::time::Instant::now();
            let table = exp(&cfg);
            table.print();
            println!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 && !metrics {
        eprintln!(
            "unknown experiment selection {wanted:?}; use e1..e8, e11, e12, e13, snapshot, \
             snapshot-pr6, snapshot-pr7, snapshot-pr8, snapshot-pr9, snapshot-pr10, or all"
        );
        std::process::exit(2);
    }
    if metrics {
        println!("\n-- engine metrics after a contended deposit cell --");
        print!("{}", metrics_demo(&cfg));
    }
}
