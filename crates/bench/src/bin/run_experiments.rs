//! Regenerates every table/figure of the reconstructed evaluation.
//!
//! ```text
//! cargo run -p txview-bench --release --bin run_experiments -- all
//! cargo run -p txview-bench --release --bin run_experiments -- e1 e4
//! cargo run -p txview-bench --release --bin run_experiments -- --quick all
//! ```

use txview_bench::{e1, e2, e3, e4, e5, e6, e7, e8, ExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::default() };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    type ExpFn = fn(&ExpConfig) -> txview_workload::report::Table;
    let experiments: [(&str, ExpFn); 8] = [
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
    ];

    println!(
        "txview experiment harness — cell duration {:?}{}",
        cfg.cell,
        if quick { " (quick mode)" } else { "" }
    );
    let mut ran = 0;
    for (name, exp) in experiments {
        if run_all || wanted.iter().any(|w| w == name) {
            let t0 = std::time::Instant::now();
            let table = exp(&cfg);
            table.print();
            println!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment selection {wanted:?}; use e1..e8 or all");
        std::process::exit(2);
    }
}
