//! Micro-benchmark behind E1: per-transaction cost of immediate view
//! maintenance under the two locking protocols (single-threaded — the
//! protocol's *overhead*, not its concurrency, which `run_experiments e1`
//! measures).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use txview_bench::experiments::{bench_bank, bench_deposit};
use txview_engine::MaintenanceMode;

fn maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_maintenance_per_txn");
    group.sample_size(20);
    for (name, mode) in [
        ("escrow", MaintenanceMode::Escrow),
        ("xlock", MaintenanceMode::XLock),
    ] {
        let bank = bench_bank(mode, 8);
        let mut seq = 0i64;
        group.bench_function(name, |b| {
            b.iter(|| {
                bench_deposit(black_box(&bank), seq);
                seq += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, maintenance);
criterion_main!(benches);
