//! Micro-benchmark behind E5: full ARIES recovery time as a function of
//! the committed-work volume since the last checkpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use txview_bench::experiments::{bench_bank, bench_deposit};
use txview_engine::MaintenanceMode;

fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_recovery_time");
    group.sample_size(10);
    for txns_since_checkpoint in [100i64, 1000, 5000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(txns_since_checkpoint),
            &txns_since_checkpoint,
            |b, &n| {
                b.iter_batched(
                    || {
                        let bank = bench_bank(MaintenanceMode::Escrow, 8);
                        bank.db.checkpoint().unwrap();
                        for seq in 0..n {
                            bench_deposit(&bank, seq);
                        }
                        bank
                    },
                    |bank| {
                        let report = bank.db.crash_and_recover(0.5, 7).unwrap();
                        black_box(report);
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, recovery);
criterion_main!(benches);
