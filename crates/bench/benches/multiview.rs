//! Micro-benchmark behind E8: per-insert cost vs. the number of indexed
//! views each DML statement must maintain (plus the join-view variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use txview_bench::experiments::bench_insert_sale;
use txview_workload::sales::{Sales, SalesConfig};

fn multiview(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_views_per_insert");
    group.sample_size(20);
    for n_views in [0usize, 1, 2, 4, 8] {
        let sales = Sales::setup(SalesConfig { n_views, ..Default::default() }).unwrap();
        let mut seq = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(n_views), &n_views, |b, _| {
            b.iter(|| {
                bench_insert_sale(black_box(&sales), seq);
                seq += 1;
            })
        });
    }
    {
        let sales = Sales::setup(SalesConfig { n_views: 4, join_view: true, ..Default::default() })
            .unwrap();
        let mut seq = 0i64;
        group.bench_function("4+join", |b| {
            b.iter(|| {
                bench_insert_sale(black_box(&sales), seq);
                seq += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, multiview);
criterion_main!(benches);
