//! Micro-benchmark behind E3: maintenance cost vs. group fan-in (how many
//! view rows exist). Exercises the view B-tree depth and the escrow apply
//! path as the view grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use txview_bench::experiments::{bench_bank, bench_deposit};
use txview_engine::MaintenanceMode;

fn groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_groups_fanin");
    group.sample_size(20);
    for n_groups in [1i64, 16, 256, 4096] {
        let bank = bench_bank(MaintenanceMode::Escrow, n_groups);
        let mut seq = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(n_groups), &n_groups, |b, _| {
            b.iter(|| {
                bench_deposit(black_box(&bank), seq);
                seq += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, groups);
criterion_main!(benches);
