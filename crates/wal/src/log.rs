//! The log manager: LSN allocation, buffered append, group flush, and the
//! master checkpoint pointer.
//!
//! Records are appended to an in-memory tail and become durable only when
//! flushed (`flush_to` / `flush_all`). The buffer pool's WAL-before-data
//! hook calls [`LogManager::flush_to`] with a pageLSN; commit calls it with
//! the commit record's LSN. A simulated crash discards the un-flushed tail,
//! exactly like a real power failure.

use crate::record::{LogRecord, RecordBody};
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txview_common::obs::{Histogram, ObsClock, Snapshot};
use txview_common::retry::{RetryCounters, RetryPolicy, RetryStatsSnapshot};
use txview_common::{Lsn, Result, TxnId};
use txview_storage::fault::CrashProbe;

/// Reserved payload-header bytes at the start of every slotted page payload
/// (B-tree node header). Shared between the WAL redo applier and the B-tree.
pub const PAYLOAD_HEADER_LEN: usize = 16;

/// Durable byte sink for the log, plus the master checkpoint pointer.
pub trait LogStore: Send + Sync {
    /// Durably append bytes (caller serializes; called under the manager's
    /// lock).
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Force bytes to stable storage.
    fn sync(&self) -> Result<()>;
    /// Total durable length in bytes.
    fn len_bytes(&self) -> Result<u64>;
    /// Read all durable bytes from `offset` to the end.
    fn read_from(&self, offset: u64) -> Result<Vec<u8>>;
    /// Persist the master checkpoint pointer (byte offset, LSN).
    fn set_master(&self, offset: u64, lsn: Lsn) -> Result<()>;
    /// Read the master checkpoint pointer.
    fn get_master(&self) -> Result<(u64, Lsn)>;
    /// Persist the replication epoch (term number). A store that predates
    /// replication keeps the default epoch 0, so non-replicated databases
    /// never pay for this.
    fn set_epoch(&self, _epoch: u64) -> Result<()> {
        Ok(())
    }
    /// Read the replication epoch (0 when never set).
    fn get_epoch(&self) -> Result<u64> {
        Ok(0)
    }
}

/// In-memory log store (tests, crash simulation).
#[derive(Default)]
pub struct MemLogStore {
    durable: Mutex<Vec<u8>>,
    master: Mutex<(u64, Lsn)>,
    epoch: AtomicU64,
}

impl MemLogStore {
    /// New empty store.
    pub fn new() -> MemLogStore {
        MemLogStore::default()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.durable.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn len_bytes(&self) -> Result<u64> {
        Ok(self.durable.lock().len() as u64)
    }

    fn read_from(&self, offset: u64) -> Result<Vec<u8>> {
        let d = self.durable.lock();
        Ok(d[(offset as usize).min(d.len())..].to_vec())
    }

    fn set_master(&self, offset: u64, lsn: Lsn) -> Result<()> {
        *self.master.lock() = (offset, lsn);
        Ok(())
    }

    fn get_master(&self) -> Result<(u64, Lsn)> {
        Ok(*self.master.lock())
    }

    fn set_epoch(&self, epoch: u64) -> Result<()> {
        self.epoch.store(epoch, Ordering::SeqCst);
        Ok(())
    }

    fn get_epoch(&self) -> Result<u64> {
        Ok(self.epoch.load(Ordering::SeqCst))
    }
}

/// File-backed log store; the master pointer lives in a sibling file.
pub struct FileLogStore {
    file: Mutex<File>,
    master_path: std::path::PathBuf,
}

impl FileLogStore {
    /// Open (or create) `path` as the log file; the master pointer is kept
    /// at `path` + ".master".
    pub fn open(path: impl AsRef<Path>) -> Result<FileLogStore> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut master_path = path.as_os_str().to_owned();
        master_path.push(".master");
        Ok(FileLogStore { file: Mutex::new(file), master_path: master_path.into() })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.file.lock().write_all(bytes)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn len_bytes(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn read_from(&self, offset: u64) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        let len = f.metadata()?.len();
        let mut buf = Vec::with_capacity(len.saturating_sub(offset) as usize);
        f.seek(SeekFrom::Start(offset))?;
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn set_master(&self, offset: u64, lsn: Lsn) -> Result<()> {
        let epoch = self.get_epoch()?;
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&offset.to_le_bytes());
        bytes.extend_from_slice(&lsn.0.to_le_bytes());
        bytes.extend_from_slice(&epoch.to_le_bytes());
        std::fs::write(&self.master_path, bytes)?;
        Ok(())
    }

    fn get_master(&self) -> Result<(u64, Lsn)> {
        // Accept both the legacy 16-byte (offset, lsn) record and the
        // 24-byte (offset, lsn, epoch) record introduced with replication.
        match std::fs::read(&self.master_path) {
            Ok(bytes) if bytes.len() == 16 || bytes.len() == 24 => {
                let offset = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                let lsn = Lsn(u64::from_le_bytes(bytes[8..16].try_into().unwrap()));
                Ok((offset, lsn))
            }
            _ => Ok((0, Lsn::NULL)),
        }
    }

    fn set_epoch(&self, epoch: u64) -> Result<()> {
        let (offset, lsn) = self.get_master()?;
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&offset.to_le_bytes());
        bytes.extend_from_slice(&lsn.0.to_le_bytes());
        bytes.extend_from_slice(&epoch.to_le_bytes());
        std::fs::write(&self.master_path, bytes)?;
        Ok(())
    }

    fn get_epoch(&self) -> Result<u64> {
        match std::fs::read(&self.master_path) {
            Ok(bytes) if bytes.len() == 24 => {
                Ok(u64::from_le_bytes(bytes[16..24].try_into().unwrap()))
            }
            _ => Ok(0),
        }
    }
}

struct Pending {
    lsn: Lsn,
    bytes: Vec<u8>,
}

struct Tail {
    pending: Vec<Pending>,
    pending_bytes: usize,
}

/// The log manager.
pub struct LogManager {
    store: Box<dyn LogStore>,
    tail: Mutex<Tail>,
    /// Serializes phase-2 syncs independently of the tail mutex, so the
    /// next group-commit batch can form and append while the previous
    /// batch's sync is still in flight (the pipelined handoff seam).
    sync_lock: Mutex<()>,
    next_lsn: AtomicU64,
    flushed_lsn: AtomicU64,
    /// Highest LSN whose bytes reached `store.append` (but are only durable
    /// once synced). Sits between `flushed_lsn` and the pending tail so a
    /// failed sync can be retried without re-appending (no duplicate
    /// records) and without falsely reporting the flush complete.
    appended_lsn: AtomicU64,
    next_txn: AtomicU64,
    /// Monotone counters for experiment reporting.
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    crash_probe: RwLock<Option<Arc<CrashProbe>>>,
    retry: Mutex<RetryPolicy>,
    retry_counters: RetryCounters,
    obs: WalObs,
}

/// Flush-path observability: latency of the two `flush_to` phases and the
/// group-commit batch size (how many pending records each physical append
/// absorbs — the paper's group-commit amortization in one histogram).
#[derive(Default)]
pub struct WalObs {
    /// Time source; switched to a logical tick counter in deterministic runs.
    pub clock: ObsClock,
    /// Phase-1 latency: handing the pending prefix to the store.
    pub append_us: Histogram,
    /// Phase-2 latency: forcing appended bytes to stable storage.
    pub sync_us: Histogram,
    /// Records per physical append (group-commit batch size).
    pub batch_records: Histogram,
}

impl LogManager {
    /// Open a manager over `store`, scanning durable records to continue
    /// the LSN sequence after a restart.
    pub fn open(store: Box<dyn LogStore>) -> Result<LogManager> {
        let bytes = store.read_from(0)?;
        let mut max_lsn = 0u64;
        let mut max_txn = 0u64;
        let mut off = 0usize;
        while let Some((rec, used)) = LogRecord::decode_framed(&bytes[off..])? {
            max_lsn = max_lsn.max(rec.lsn.0);
            max_txn = max_txn.max(rec.txn.0);
            off += used;
        }
        Ok(LogManager {
            store,
            tail: Mutex::new(Tail { pending: Vec::new(), pending_bytes: 0 }),
            sync_lock: Mutex::new(()),
            next_lsn: AtomicU64::new(max_lsn + 1),
            flushed_lsn: AtomicU64::new(max_lsn),
            appended_lsn: AtomicU64::new(max_lsn),
            next_txn: AtomicU64::new(max_txn + 1),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            crash_probe: RwLock::new(None),
            retry: Mutex::new(RetryPolicy::default()),
            retry_counters: RetryCounters::default(),
            obs: WalObs::default(),
        })
    }

    /// Replace the transient-I/O retry policy for the append/sync/master
    /// seams.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Retry telemetry for the log-I/O seam.
    pub fn io_retry_stats(&self) -> RetryStatsSnapshot {
        self.retry_counters.snapshot()
    }

    /// Register a crash-point probe, invoked inside the group flush just
    /// before the append and again between the append and the sync. The
    /// torture harness uses this to land crashes at the "WAL bytes
    /// written but not yet forced" seam.
    pub fn set_crash_probe(&self, f: Arc<CrashProbe>) {
        *self.crash_probe.write() = Some(f);
    }

    fn probe(&self, point: &'static str) {
        let hook = self.crash_probe.read().clone();
        if let Some(f) = hook {
            f(point);
        }
    }

    /// Fire the registered crash probe at `point`. Public so the commit
    /// pipeline's seams (`wal.pipeline.*`) land in the same torture sweep
    /// as the flush-internal probes.
    pub fn probe_point(&self, point: &'static str) {
        self.probe(point);
    }

    /// Allocate a transaction id. The log manager owns the id space so that
    /// user transactions, system transactions, and post-recovery work never
    /// collide (ids restart above everything seen in the durable log).
    pub fn alloc_txn_id(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::SeqCst))
    }

    /// Convenience: fresh in-memory log.
    pub fn in_memory() -> LogManager {
        LogManager::open(Box::new(MemLogStore::new())).expect("mem log open")
    }

    /// Append a record; returns its LSN. Not durable until flushed.
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: RecordBody) -> Lsn {
        let mut tail = self.tail.lock();
        let lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::SeqCst));
        let rec = LogRecord { lsn, prev_lsn, txn, body };
        let bytes = rec.encode_framed();
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        tail.pending_bytes += bytes.len();
        tail.pending.push(Pending { lsn, bytes });
        lsn
    }

    /// Highest durably-flushed LSN.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed_lsn.load(Ordering::SeqCst))
    }

    /// Highest LSN whose bytes reached the store's append (durable only
    /// after a subsequent successful sync).
    pub fn appended_lsn(&self) -> Lsn {
        Lsn(self.appended_lsn.load(Ordering::SeqCst))
    }

    /// Highest LSN allocated so far (flushed or not). Used as the snapshot
    /// point of snapshot-isolation readers.
    pub fn last_allocated_lsn(&self) -> Lsn {
        Lsn(self.next_lsn.load(Ordering::SeqCst).saturating_sub(1))
    }

    /// Make every record with `lsn <= target` durable. The tail is written
    /// in order, so this flushes a prefix.
    ///
    /// The flush is two-phased so a transient fault leaves the buffer
    /// consistent for retry: phase one hands pending bytes to the store
    /// (retried under the policy; on success those records move from the
    /// tail to the `appended_lsn` watermark, so a later sync failure never
    /// re-appends them), phase two forces them to stable storage (also
    /// retried; `flushed_lsn` advances only after a successful sync, so no
    /// caller is ever acked on unsynced bytes). On error every waiter on
    /// this group flush sees the failure, nothing is acked, and a later
    /// `flush_to` resumes exactly where this one stopped.
    pub fn flush_to(&self, target: Lsn) -> Result<()> {
        if self.flushed_lsn() >= target {
            return Ok(());
        }
        self.append_upto(target)?;
        self.sync_appended()
    }

    /// Strict serial flush: append and sync with the sync mutex held
    /// across *both* phases, so concurrent committers cannot piggyback on
    /// each other's device syncs — every commit pays its own.
    ///
    /// `flush_to`'s split-lock flush releases the tail before the sync and
    /// reads the appended watermark under the sync mutex, which makes
    /// blocked flushers share whichever sync runs first. That sharing is
    /// exactly group commit — correct, but it is the *feature* the commit
    /// pipeline exists to provide, and a baseline that gets it for free
    /// makes every serial-vs-pipelined comparison vacuous. The serial
    /// commit path uses this strict variant so "serial" means what it
    /// says: one device sync per committer. Page-flush hooks, checkpoints,
    /// and the pipeline's own leader rounds keep the sharing `flush_to`.
    pub fn flush_strict(&self, target: Lsn) -> Result<()> {
        let _sync = self.sync_lock.lock();
        if self.flushed_lsn() >= target {
            // Our bytes were covered by a sync that completed before we
            // reached the device; they are durable, nothing to pay.
            return Ok(());
        }
        self.append_upto(target)?;
        self.sync_appended_locked()
    }

    /// Phase 1 of a flush: hand every pending record with `lsn <= target`
    /// to the store, advancing the `appended_lsn` watermark. The bytes are
    /// *not* durable until a subsequent [`LogManager::sync_appended`]. The
    /// tail mutex is released before any sync, which is what lets a
    /// group-commit leader append the next batch while the previous
    /// batch's sync is still in flight.
    pub fn append_upto(&self, target: Lsn) -> Result<()> {
        if self.appended_lsn() >= target {
            return Ok(());
        }
        let mut tail = self.tail.lock();
        let policy = *self.retry.lock();
        let split = tail
            .pending
            .iter()
            .position(|p| p.lsn > target)
            .unwrap_or(tail.pending.len());
        if split > 0 {
            let mut buf = Vec::with_capacity(tail.pending_bytes);
            for p in &tail.pending[..split] {
                buf.extend_from_slice(&p.bytes);
            }
            let last = tail.pending[split - 1].lsn;
            self.probe("wal.flush_to.pre_append");
            let t0 = self.obs.clock.now();
            policy.run(&self.retry_counters, || self.store.append(&buf))?;
            self.obs.append_us.record(self.obs.clock.now().saturating_sub(t0));
            self.obs.batch_records.record(split as u64);
            tail.pending.drain(..split);
            tail.pending_bytes = tail.pending.iter().map(|p| p.bytes.len()).sum();
            self.appended_lsn.fetch_max(last.0, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Phase 2 of a flush: force everything appended-but-unsynced to
    /// stable storage — including leftovers from an earlier flush whose
    /// sync failed. The `appended_lsn` watermark is read *after* taking
    /// the sync mutex, so a sync always covers every byte appended before
    /// it and concurrent flushers stay idempotent: whichever sync runs
    /// first advances `flushed_lsn` over all of them, and the others
    /// become no-ops.
    pub fn sync_appended(&self) -> Result<()> {
        let _sync = self.sync_lock.lock();
        self.sync_appended_locked()
    }

    /// [`LogManager::sync_appended`] body; caller holds `sync_lock`.
    fn sync_appended_locked(&self) -> Result<()> {
        let appended = self.appended_lsn.load(Ordering::SeqCst);
        if appended > self.flushed_lsn.load(Ordering::SeqCst) {
            let policy = *self.retry.lock();
            self.probe("wal.flush_to.pre_sync");
            let t0 = self.obs.clock.now();
            policy.run(&self.retry_counters, || self.store.sync())?;
            self.obs.sync_us.record(self.obs.clock.now().saturating_sub(t0));
            self.flushed_lsn.fetch_max(appended, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Flush the entire tail. The target watermark is taken under the tail
    /// mutex: `append` allocates LSNs under the same mutex, so the target
    /// is exactly "everything buffered when the flush started" and a
    /// pipelined appender racing in cannot extend it mid-flush.
    pub fn flush_all(&self) -> Result<()> {
        let target = {
            let _tail = self.tail.lock();
            Lsn(self.next_lsn.load(Ordering::SeqCst).saturating_sub(1))
        };
        self.flush_to(target)
    }

    /// Write a checkpoint record: flushes first so the recorded byte offset
    /// is exact, persists the master pointer, then flushes the checkpoint.
    pub fn write_checkpoint(
        &self,
        active: Vec<(TxnId, crate::record::TxnKind, Lsn)>,
        dirty: Vec<(txview_common::PageId, Lsn)>,
    ) -> Result<Lsn> {
        self.flush_all()?;
        let offset = self.store.len_bytes()?;
        let lsn = self.append(TxnId::NONE, Lsn::NULL, RecordBody::Checkpoint { active, dirty });
        self.flush_to(lsn)?;
        let policy = *self.retry.lock();
        policy.run(&self.retry_counters, || self.store.set_master(offset, lsn))?;
        Ok(lsn)
    }

    /// The persisted master checkpoint pointer (byte offset, LSN).
    pub fn master(&self) -> Result<(u64, Lsn)> {
        self.store.get_master()
    }

    /// Persist the replication epoch (term number) in the master record.
    pub fn set_epoch(&self, epoch: u64) -> Result<()> {
        self.store.set_epoch(epoch)
    }

    /// The persisted replication epoch (0 when never set).
    pub fn epoch(&self) -> Result<u64> {
        self.store.get_epoch()
    }

    /// Persist the master checkpoint pointer directly (follower replay:
    /// the follower mirrors the leader's checkpoint at its own byte
    /// offset after flushing all pages, without appending a new record).
    pub fn set_master_raw(&self, offset: u64, lsn: Lsn) -> Result<()> {
        let policy = *self.retry.lock();
        policy.run(&self.retry_counters, || self.store.set_master(offset, lsn))
    }

    /// Durably append pre-encoded record bytes, bypassing the in-memory
    /// tail, and sync. Follower replay uses this to keep its log a
    /// byte-identical prefix of the leader's: frames carry the leader's
    /// framed encoding and must land verbatim (appending through the tail
    /// would re-frame and could interleave with local records).
    pub fn append_raw_durable(&self, bytes: &[u8]) -> Result<()> {
        let _tail = self.tail.lock();
        self.store.append(bytes)?;
        self.store.sync()
    }

    /// Advance the LSN watermarks to cover records that reached the store
    /// through [`LogManager::append_raw_durable`] rather than the tail, so
    /// follower snapshot reads (which pin `last_allocated_lsn`) see the
    /// ingested prefix as durable.
    pub fn note_external_advance(&self, lsn: Lsn) {
        self.next_lsn.fetch_max(lsn.0 + 1, Ordering::SeqCst);
        self.appended_lsn.fetch_max(lsn.0, Ordering::SeqCst);
        self.flushed_lsn.fetch_max(lsn.0, Ordering::SeqCst);
    }

    /// Snapshot of all durable records from byte `offset`, with the byte
    /// offset of each record. Stops cleanly at a torn tail.
    pub fn read_durable_from(&self, offset: u64) -> Result<Vec<(u64, LogRecord)>> {
        let bytes = self.store.read_from(offset)?;
        let mut out = Vec::new();
        let mut off = 0usize;
        while let Some((rec, used)) = LogRecord::decode_framed(&bytes[off..])? {
            out.push((offset + off as u64, rec));
            off += used;
        }
        Ok(out)
    }

    /// Simulate a crash: the un-flushed tail evaporates. LSN allocation
    /// continues (recovery reopens with a fresh manager in real use; tests
    /// may keep using this one).
    pub fn simulate_crash(&self) {
        let mut tail = self.tail.lock();
        tail.pending.clear();
        tail.pending_bytes = 0;
    }

    /// Total records appended since open (durable or not).
    pub fn appended_records(&self) -> u64 {
        self.appended_records.load(Ordering::Relaxed)
    }

    /// Total bytes appended since open (durable or not).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes.load(Ordering::Relaxed)
    }

    /// Current durable length in bytes.
    pub fn durable_len(&self) -> Result<u64> {
        self.store.len_bytes()
    }

    /// Flush-path observability handles (clock switching, direct reads).
    pub fn obs(&self) -> &WalObs {
        &self.obs
    }

    /// Point-in-time metrics snapshot of the log layer, `wal.*`-namespaced.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.counter("wal.appended_records", self.appended_records());
        s.counter("wal.appended_bytes", self.appended_bytes());
        let retry = self.retry_counters.snapshot();
        s.counter("wal.io_retries", retry.retries);
        s.counter("wal.io_exhausted", retry.exhausted);
        s.hist("wal.append_us", self.obs.append_us.snapshot());
        s.hist("wal.sync_us", self.obs.sync_us.snapshot());
        s.hist("wal.batch_records", self.obs.batch_records.snapshot());
        s.sort();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxnKind;
    use txview_common::Error;

    fn begin_body() -> RecordBody {
        RecordBody::Begin { kind: TxnKind::User }
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        let b = log.append(TxnId(1), a, RecordBody::Commit);
        assert!(b > a);
        assert_eq!(log.appended_records(), 2);
    }

    #[test]
    fn obs_snapshot_tracks_flush_phases_and_batch_size() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        let b = log.append(TxnId(1), a, RecordBody::Commit);
        log.flush_to(b).unwrap();
        let s = log.obs_snapshot();
        assert_eq!(s.counter_value("wal.appended_records"), Some(2));
        let batch = s.hist_value("wal.batch_records").unwrap();
        assert_eq!(batch.count(), 1, "one physical append");
        assert_eq!(batch.quantile(1.0) >= 2, true, "batch absorbed both records");
        assert_eq!(s.hist_value("wal.append_us").unwrap().count(), 1);
        assert_eq!(s.hist_value("wal.sync_us").unwrap().count(), 1);
        s.validate().unwrap();
        // A no-op flush (already durable) records nothing new.
        log.flush_to(b).unwrap();
        assert_eq!(log.obs_snapshot().hist_value("wal.sync_us").unwrap().count(), 1);
    }

    #[test]
    fn flush_to_makes_prefix_durable() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        let b = log.append(TxnId(1), a, RecordBody::Commit);
        log.flush_to(a).unwrap();
        assert_eq!(log.flushed_lsn(), a);
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 1);
        log.flush_to(b).unwrap();
        assert_eq!(log.read_durable_from(0).unwrap().len(), 2);
    }

    #[test]
    fn crash_drops_unflushed_tail() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        log.flush_to(a).unwrap();
        let _b = log.append(TxnId(1), a, RecordBody::Commit);
        log.simulate_crash();
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].1.body, RecordBody::Begin { .. }));
    }

    #[test]
    fn checkpoint_sets_master_and_is_durable() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        let ck = log
            .write_checkpoint(vec![(TxnId(1), TxnKind::User, a)], vec![])
            .unwrap();
        let (offset, lsn) = log.master().unwrap();
        assert_eq!(lsn, ck);
        let recs = log.read_durable_from(offset).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].1.body, RecordBody::Checkpoint { .. }));
    }

    #[test]
    fn reopen_continues_lsn_sequence() {
        let store = MemLogStore::new();
        let first_lsn;
        {
            // Scope one manager's lifetime over the shared store bytes.
            let log = LogManager::open(Box::new(MemLogStore::new())).unwrap();
            first_lsn = log.append(TxnId(1), Lsn::NULL, begin_body());
            log.flush_all().unwrap();
            // Copy durable bytes into `store` to model the same file.
            store.append(&log.read_durable_from(0).unwrap()[0].1.encode_framed()).unwrap();
        }
        let log2 = LogManager::open(Box::new(store)).unwrap();
        let next = log2.append(TxnId(2), Lsn::NULL, begin_body());
        assert!(next > first_lsn);
    }

    #[test]
    fn file_log_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("txview-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("test.wal.master"));
        {
            let log = LogManager::open(Box::new(FileLogStore::open(&path).unwrap())).unwrap();
            let a = log.append(TxnId(1), Lsn::NULL, begin_body());
            log.write_checkpoint(vec![], vec![]).unwrap();
            log.flush_to(a).unwrap();
        }
        {
            let log = LogManager::open(Box::new(FileLogStore::open(&path).unwrap())).unwrap();
            let recs = log.read_durable_from(0).unwrap();
            assert_eq!(recs.len(), 2);
            let (off, lsn) = log.master().unwrap();
            assert!(lsn > Lsn::NULL);
            assert_eq!(log.read_durable_from(off).unwrap()[0].1.lsn, lsn);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("test.wal.master"));
    }

    #[test]
    fn retry_absorbs_transient_append_fault() {
        use crate::fault::FaultLogStore;
        use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let log = LogManager::open(Box::new(FaultLogStore::new(Arc::clone(&clock)))).unwrap();
        log.set_retry_policy(RetryPolicy::no_delay(5));
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::Transient)] });
        log.flush_to(a).unwrap();
        assert_eq!(log.flushed_lsn(), a);
        assert_eq!(log.read_durable_from(0).unwrap().len(), 1);
        let snap = log.io_retry_stats();
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn exhausted_append_fails_cleanly_and_later_flush_resumes() {
        use crate::fault::FaultLogStore;
        use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let log = LogManager::open(Box::new(FaultLogStore::new(Arc::clone(&clock)))).unwrap();
        log.set_retry_policy(RetryPolicy::no_delay(1)); // no retry: faults surface
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let b = log.append(TxnId(1), a, RecordBody::Commit);
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::Transient)] });
        // The group flush fails as a whole: nothing acked, nothing durable.
        assert!(matches!(log.flush_to(b), Err(Error::IoTransient(_))));
        assert_eq!(log.flushed_lsn(), Lsn::NULL);
        assert!(log.read_durable_from(0).unwrap().is_empty());
        assert_eq!(log.io_retry_stats().exhausted, 1);
        // The tail was left consistent: the retried flush makes exactly the
        // two records durable, in order, with no duplicates.
        log.flush_to(b).unwrap();
        assert_eq!(log.flushed_lsn(), b);
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1.lsn, a);
        assert_eq!(recs[1].1.lsn, b);
    }

    #[test]
    fn failed_sync_is_not_acked_and_retry_does_not_duplicate_records() {
        use crate::fault::FaultLogStore;
        use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        let log = LogManager::open(Box::new(store)).unwrap();
        log.set_retry_policy(RetryPolicy::no_delay(1));
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        // Event 0 is the append (succeeds), event 1 the sync (fails).
        clock.arm(&FaultSchedule { faults: vec![(1, FaultKind::Transient)] });
        assert!(matches!(log.flush_to(a), Err(Error::IoTransient(_))));
        // Appended but not forced: the flush must NOT be reported complete.
        assert_eq!(log.flushed_lsn(), Lsn::NULL);
        // Retrying completes the flush by syncing only — the record must
        // not be appended a second time.
        log.flush_to(a).unwrap();
        assert_eq!(log.flushed_lsn(), a);
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 1, "sync retry must not duplicate the append");
        assert_eq!(recs[0].1.lsn, a);
    }

    #[test]
    fn master_write_retries_transient_faults() {
        use crate::fault::FaultLogStore;
        use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let log = LogManager::open(Box::new(FaultLogStore::new(Arc::clone(&clock)))).unwrap();
        log.set_retry_policy(RetryPolicy::no_delay(5));
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        // Checkpoint path: flush (append=0, sync=1), checkpoint record
        // (append=2, sync=3), then the master write at event 4 — fault it.
        clock.arm(&FaultSchedule { faults: vec![(4, FaultKind::Transient)] });
        let ck = log.write_checkpoint(vec![(TxnId(1), TxnKind::User, a)], vec![]).unwrap();
        assert_eq!(log.master().unwrap().1, ck);
        assert!(log.io_retry_stats().retries >= 1);
    }

    #[test]
    fn append_upto_is_not_durable_until_sync_appended() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        let b = log.append(TxnId(1), a, RecordBody::Commit);
        log.append_upto(b).unwrap();
        assert_eq!(log.appended_lsn(), b, "phase 1 advances the appended watermark");
        assert_eq!(log.flushed_lsn(), Lsn::NULL, "nothing acked before the sync");
        log.sync_appended().unwrap();
        assert_eq!(log.flushed_lsn(), b);
        // Idempotent: a second sync with nothing outstanding records nothing.
        log.sync_appended().unwrap();
        assert_eq!(log.obs_snapshot().hist_value("wal.sync_us").unwrap().count(), 1);
    }

    #[test]
    fn one_sync_covers_all_previously_appended_batches() {
        // Two pipelined batches appended back to back; a single sync makes
        // both durable (the watermark is read under the sync lock).
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Commit);
        log.append_upto(a).unwrap();
        let b = log.append(TxnId(2), Lsn::NULL, RecordBody::Commit);
        log.append_upto(b).unwrap();
        log.sync_appended().unwrap();
        assert_eq!(log.flushed_lsn(), b);
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].1.lsn < recs[1].1.lsn);
    }

    #[test]
    fn failed_sync_appended_retries_without_duplicating() {
        use crate::fault::FaultLogStore;
        use txview_storage::fault::{FaultClock, FaultKind, FaultSchedule};
        let clock = FaultClock::new();
        let log = LogManager::open(Box::new(FaultLogStore::new(Arc::clone(&clock)))).unwrap();
        log.set_retry_policy(RetryPolicy::no_delay(1));
        let a = log.append(TxnId(1), Lsn::NULL, begin_body());
        log.append_upto(a).unwrap();
        // The next I/O event after the already-performed append is the sync.
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::Transient)] });
        assert!(matches!(log.sync_appended(), Err(Error::IoTransient(_))));
        assert_eq!(log.flushed_lsn(), Lsn::NULL, "failed sync acks nothing");
        log.sync_appended().unwrap();
        assert_eq!(log.flushed_lsn(), a);
        assert_eq!(log.read_durable_from(0).unwrap().len(), 1);
    }

    #[test]
    fn flush_strict_pays_one_sync_per_commit() {
        // The vacuous-baseline bug: `flush_to` lets a blocked flusher
        // piggyback on whichever sync runs first (accidental group
        // commit). `flush_strict` must not — N sequential strict flushes
        // of N commit records cost N device syncs.
        let log = LogManager::in_memory();
        let mut lsns = Vec::new();
        for t in 1..=4u64 {
            lsns.push(log.append(TxnId(t), Lsn::NULL, RecordBody::Commit));
        }
        for &l in &lsns {
            log.flush_strict(l).unwrap();
        }
        // The first strict flush appends only records <= its target, so
        // each later commit still pays its own append + sync.
        let syncs = log.obs_snapshot().hist_value("wal.sync_us").unwrap().count();
        assert_eq!(syncs, 4, "strict flush must not share syncs");
        assert_eq!(log.flushed_lsn(), *lsns.last().unwrap());
    }

    #[test]
    fn flush_strict_skips_only_already_durable_targets() {
        let log = LogManager::in_memory();
        let a = log.append(TxnId(1), Lsn::NULL, RecordBody::Commit);
        log.flush_strict(a).unwrap();
        let syncs_before = log.obs_snapshot().hist_value("wal.sync_us").unwrap().count();
        log.flush_strict(a).unwrap(); // already durable: no extra device op
        let syncs_after = log.obs_snapshot().hist_value("wal.sync_us").unwrap().count();
        assert_eq!(syncs_before, syncs_after);
    }

    #[test]
    fn concurrent_appends_are_totally_ordered() {
        let log = std::sync::Arc::new(LogManager::in_memory());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        log.append(TxnId(t + 1), Lsn::NULL, RecordBody::Commit);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        log.flush_all().unwrap();
        let recs = log.read_durable_from(0).unwrap();
        assert_eq!(recs.len(), 800);
        for w in recs.windows(2) {
            assert!(w[0].1.lsn < w[1].1.lsn, "log must be LSN-ordered");
        }
    }
}
