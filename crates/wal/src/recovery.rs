//! ARIES recovery: analysis, redo, undo.
//!
//! * **Analysis** starts at the master checkpoint and rebuilds the active-
//!   transaction table (ATT) and dirty-page table (DPT).
//! * **Redo** repeats history from the earliest recLSN: every logged page
//!   operation is re-applied iff the page is in the DPT, the record's LSN is
//!   ≥ the page's recLSN, and `pageLSN < recordLSN`. Pages that never made
//!   it to disk are recreated from their `FormatPage` records.
//! * **Undo** rolls back losers in a single reverse-LSN sweep across all of
//!   them. `UndoOp::Page` descriptors (system transactions) are undone
//!   *physically* right here; logical descriptors (escrow deltas, index key
//!   operations) are delegated to the engine through [`UndoHandler`], which
//!   re-traverses the index and writes CLRs. CLRs encountered in the log
//!   jump straight to their `undo_next`, so rollback never regresses.
//!
//! Note on CLR back-chains: crash-undo CLRs use a null `prev_lsn` (only
//! `undo_next` drives this algorithm), but *runtime* rollback CLRs are
//! chained through the transaction's `last_lsn` — forward records logged
//! after a savepoint rollback must back-chain through the CLRs so a later
//! crash-undo skips the already-compensated work.

use crate::log::{LogManager, PAYLOAD_HEADER_LEN};
use crate::record::{LogRecord, RecordBody, TxnKind, UndoOp};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use txview_common::{Error, Lsn, PageId, Result, TxnId};
use txview_storage::buffer::BufferPool;
use txview_storage::page::PageType;

/// Callback used by the undo pass (and by runtime rollback in `txview-txn`)
/// to execute a *logical* undo action. The implementation must perform the
/// inverse operation through the normal index code paths and log each page
/// change as a CLR carrying `undo_next`.
pub trait UndoHandler {
    /// Logically undo `op` on behalf of `txn`; every page change must be
    /// logged as a CLR carrying the given `undo_next`, appended through
    /// `chain` (the transaction's `last_lsn`). Threading `chain` is what
    /// keeps partial (savepoint) rollbacks crash-safe: forward records
    /// logged *after* the rollback then back-chain through the CLRs, whose
    /// `undo_next` makes crash-undo skip the already-compensated records.
    fn undo(&self, txn: TxnId, op: &UndoOp, undo_next: Lsn, chain: &mut Lsn) -> Result<()>;
}

/// What recovery did, for assertions and the E5 experiment.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Records scanned by the analysis pass (from the checkpoint).
    pub analysis_records: u64,
    /// Records examined by the redo pass.
    pub redo_examined: u64,
    /// Redo operations actually applied (pageLSN test passed).
    pub redo_applied: u64,
    /// Redo operations skipped by the pageLSN test.
    pub redo_skipped: u64,
    /// Loser transactions rolled back.
    pub losers: u64,
    /// Committed transactions observed (winners).
    pub winners: u64,
    /// Logical undo actions delegated to the engine.
    pub logical_undos: u64,
    /// Physical (system-transaction) undo actions applied here.
    pub physical_undos: u64,
    /// Wall-clock microseconds per phase.
    pub analysis_us: u64,
    /// Redo phase wall-clock microseconds.
    pub redo_us: u64,
    /// Undo phase wall-clock microseconds.
    pub undo_us: u64,
}

/// Re-apply one logged page operation with the standard ARIES pageLSN
/// test: the redo is applied iff the target page's LSN is older than the
/// record's. Returns whether the redo was applied (false: skipped as
/// already reflected). Shared by the recovery redo pass and the follower
/// replay loop, which applies shipped frames through exactly this path so
/// replication inherits redo's idempotence.
pub fn redo_record(pool: &Arc<BufferPool>, rec: &LogRecord) -> Result<bool> {
    let (page_id, redo) = match &rec.body {
        RecordBody::Update { page, redo, .. } => (*page, redo),
        RecordBody::Clr { page, redo, .. } => (*page, redo),
        _ => return Ok(false),
    };
    let ty = redo.format_type().unwrap_or(PageType::Free);
    let page = pool.fetch_or_recreate(page_id, ty)?;
    let mut guard = page.write();
    if guard.lsn() < rec.lsn {
        redo.apply(guard.payload_mut(), PAYLOAD_HEADER_LEN)?;
        guard.set_lsn(rec.lsn);
        Ok(true)
    } else {
        Ok(false)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxnStatus {
    Active,
    Committed,
    Ended,
}

struct Att {
    status: TxnStatus,
    /// Kept for diagnostics; undo treats user and system losers uniformly
    /// because system-txn records carry physical `UndoOp::Page` descriptors.
    #[allow(dead_code)]
    kind: TxnKind,
    last_lsn: Lsn,
}

/// Run full crash recovery. Returns a report of what was done.
pub fn recover(
    log: &LogManager,
    pool: &Arc<BufferPool>,
    handler: &dyn UndoHandler,
) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();

    // Read the whole durable log once; analysis logically starts at the
    // checkpoint (losers may have older records that undo still needs).
    let all = log.read_durable_from(0)?;
    let by_lsn: HashMap<Lsn, usize> =
        all.iter().enumerate().map(|(i, (_, r))| (r.lsn, i)).collect();
    let (_, master_lsn) = log.master()?;
    let start_idx = if master_lsn.is_null() {
        0
    } else {
        *by_lsn.get(&master_lsn).ok_or_else(|| {
            Error::corruption("master checkpoint LSN not found in durable log")
        })?
    };

    // ---- Analysis -------------------------------------------------------
    let t0 = Instant::now();
    let mut att: HashMap<TxnId, Att> = HashMap::new();
    let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
    for (_, rec) in &all[start_idx..] {
        report.analysis_records += 1;
        match &rec.body {
            RecordBody::Checkpoint { active, dirty } => {
                for (t, k, l) in active {
                    att.entry(*t).or_insert(Att {
                        status: TxnStatus::Active,
                        kind: *k,
                        last_lsn: *l,
                    });
                }
                for (p, l) in dirty {
                    dpt.entry(*p).or_insert(*l);
                }
            }
            RecordBody::Begin { kind } => {
                att.insert(
                    rec.txn,
                    Att { status: TxnStatus::Active, kind: *kind, last_lsn: rec.lsn },
                );
            }
            RecordBody::Commit => {
                if let Some(a) = att.get_mut(&rec.txn) {
                    a.status = TxnStatus::Committed;
                    a.last_lsn = rec.lsn;
                }
            }
            RecordBody::Abort => {
                if let Some(a) = att.get_mut(&rec.txn) {
                    a.last_lsn = rec.lsn;
                }
            }
            RecordBody::End => {
                if let Some(a) = att.get_mut(&rec.txn) {
                    a.status = TxnStatus::Ended;
                }
            }
            RecordBody::Update { page, .. } | RecordBody::Clr { page, .. } => {
                if let Some(a) = att.get_mut(&rec.txn) {
                    a.last_lsn = rec.lsn;
                }
                dpt.entry(*page).or_insert(rec.lsn);
            }
        }
    }
    report.analysis_us = t0.elapsed().as_micros() as u64;

    // ---- Redo -----------------------------------------------------------
    let t1 = Instant::now();
    // A null recLSN means "dirty since before its first log record" (a
    // freshly allocated page): redo for it starts at the log's beginning.
    let redo_start = dpt.values().copied().min().unwrap_or(Lsn::NULL);
    if !dpt.is_empty() {
        let from_idx = all
            .iter()
            .position(|(_, r)| r.lsn >= redo_start)
            .unwrap_or(all.len());
        for (_, rec) in &all[from_idx..] {
            let (page_id, redo) = match &rec.body {
                RecordBody::Update { page, redo, .. } => (*page, redo),
                RecordBody::Clr { page, redo, .. } => (*page, redo),
                _ => continue,
            };
            report.redo_examined += 1;
            let rec_lsn = match dpt.get(&page_id) {
                Some(&l) if rec.lsn >= l => l,
                _ => {
                    report.redo_skipped += 1;
                    continue;
                }
            };
            let _ = (rec_lsn, redo);
            if redo_record(pool, rec)? {
                report.redo_applied += 1;
            } else {
                report.redo_skipped += 1;
            }
        }
    }
    report.redo_us = t1.elapsed().as_micros() as u64;

    // ---- Undo -----------------------------------------------------------
    let t2 = Instant::now();
    let mut heap: BinaryHeap<(Lsn, TxnId)> = BinaryHeap::new();
    for (txn, a) in &att {
        match a.status {
            TxnStatus::Committed | TxnStatus::Ended => report.winners += 1,
            TxnStatus::Active => {
                report.losers += 1;
                heap.push((a.last_lsn, *txn));
            }
        }
    }
    while let Some((lsn, txn)) = heap.pop() {
        if lsn.is_null() {
            log.append(txn, Lsn::NULL, RecordBody::End);
            continue;
        }
        let idx = *by_lsn.get(&lsn).ok_or_else(|| {
            Error::corruption(format!("undo chain points at missing {lsn:?}"))
        })?;
        let rec: &LogRecord = &all[idx].1;
        match &rec.body {
            RecordBody::Update { page, undo, .. } => {
                match undo {
                    UndoOp::None => {}
                    UndoOp::Page { page: upage, op } => {
                        report.physical_undos += 1;
                        let clr_lsn = log.append(
                            txn,
                            Lsn::NULL,
                            RecordBody::Clr {
                                page: *upage,
                                redo: op.clone(),
                                undo_next: rec.prev_lsn,
                            },
                        );
                        let p = pool.fetch_or_recreate(*upage, PageType::Free)?;
                        let mut guard = p.write();
                        op.apply(guard.payload_mut(), PAYLOAD_HEADER_LEN)?;
                        guard.set_lsn(clr_lsn);
                    }
                    logical => {
                        report.logical_undos += 1;
                        // The CLR back-chain is irrelevant during crash
                        // undo (the walk is driven by undo_next), so a
                        // throwaway chain slot suffices.
                        let mut chain = Lsn::NULL;
                        handler.undo(txn, logical, rec.prev_lsn, &mut chain)?;
                    }
                }
                let _ = page;
                heap.push((rec.prev_lsn, txn));
            }
            RecordBody::Clr { undo_next, .. } => {
                heap.push((*undo_next, txn));
            }
            RecordBody::Begin { .. } => {
                log.append(txn, lsn, RecordBody::End);
            }
            RecordBody::Abort | RecordBody::Commit | RecordBody::End => {
                heap.push((rec.prev_lsn, txn));
            }
            RecordBody::Checkpoint { .. } => {
                return Err(Error::corruption("checkpoint in a txn undo chain"));
            }
        }
    }
    log.flush_all()?;
    report.undo_us = t2.elapsed().as_micros() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoOp;
    use parking_lot::Mutex;
    use txview_common::IndexId;
    use txview_storage::disk::MemDisk;
    use txview_storage::slotted::Slotted;

    struct NoopHandler;
    impl UndoHandler for NoopHandler {
        fn undo(&self, _txn: TxnId, _op: &UndoOp, _undo_next: Lsn, _chain: &mut Lsn) -> Result<()> {
            Ok(())
        }
    }

    struct RecordingHandler(Mutex<Vec<(TxnId, UndoOp, Lsn)>>);
    impl UndoHandler for RecordingHandler {
        fn undo(&self, txn: TxnId, op: &UndoOp, undo_next: Lsn, _chain: &mut Lsn) -> Result<()> {
            self.0.lock().push((txn, op.clone(), undo_next));
            Ok(())
        }
    }

    fn setup() -> (Arc<LogManager>, Arc<BufferPool>) {
        let log = Arc::new(LogManager::in_memory());
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 16);
        let l2 = Arc::clone(&log);
        pool.set_wal_flush(Arc::new(move |lsn| l2.flush_to(lsn)));
        (log, pool)
    }

    /// Log a page format + slot insert for `txn`, applying to the pool too.
    #[allow(clippy::too_many_arguments)]
    fn do_insert(
        log: &LogManager,
        pool: &Arc<BufferPool>,
        txn: TxnId,
        prev: Lsn,
        pid: PageId,
        idx: u16,
        bytes: &[u8],
        undo: UndoOp,
    ) -> Lsn {
        let redo = RedoOp::SlotInsert { idx, bytes: bytes.to_vec() };
        let lsn = log.append(txn, prev, RecordBody::Update { page: pid, redo: redo.clone(), undo });
        let page = pool.fetch(pid).unwrap();
        let mut g = page.write();
        redo.apply(g.payload_mut(), PAYLOAD_HEADER_LEN).unwrap();
        g.set_lsn(lsn);
        lsn
    }

    fn format_page(log: &LogManager, pool: &Arc<BufferPool>, txn: TxnId, prev: Lsn) -> (PageId, Lsn) {
        let (pid, page) = pool.new_page(PageType::BTreeLeaf).unwrap();
        let redo = RedoOp::FormatPage { ty: 2, header_len: PAYLOAD_HEADER_LEN as u16 };
        let lsn = log.append(
            txn,
            prev,
            RecordBody::Update { page: pid, redo: redo.clone(), undo: UndoOp::None },
        );
        let mut g = page.write();
        redo.apply(g.payload_mut(), PAYLOAD_HEADER_LEN).unwrap();
        g.set_lsn(lsn);
        (pid, lsn)
    }

    fn slot0(pool: &Arc<BufferPool>, pid: PageId) -> Vec<u8> {
        let page = pool.fetch(pid).unwrap();
        let mut g = page.write();
        let s = Slotted::wrap(&mut g.payload_mut()[PAYLOAD_HEADER_LEN..]);
        s.get(0).to_vec()
    }

    #[test]
    fn committed_work_is_redone_after_total_buffer_loss() {
        let (log, pool) = setup();
        let txn = TxnId(1);
        let b = log.append(txn, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let (pid, l1) = format_page(&log, &pool, txn, b);
        let l2 = do_insert(&log, &pool, txn, l1, pid, 0, b"hello", UndoOp::IndexInsert { index: IndexId(1), key: vec![1] });
        let c = log.append(txn, l2, RecordBody::Commit);
        log.flush_to(c).unwrap();

        // Crash: buffers lost entirely, log tail already flushed.
        let mut rng = txview_common::rng::Rng::new(1);
        pool.simulate_crash(0.0, &mut rng).unwrap();
        log.simulate_crash();

        let report = recover(&log, &pool, &NoopHandler).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 0);
        assert!(report.redo_applied >= 2);
        assert_eq!(slot0(&pool, pid), b"hello");
    }

    #[test]
    fn loser_logical_ops_are_delegated_in_reverse_order() {
        let (log, pool) = setup();
        let txn = TxnId(1);
        let b = log.append(txn, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let (pid, l1) = format_page(&log, &pool, txn, b);
        let u1 = UndoOp::IndexInsert { index: IndexId(1), key: vec![1] };
        let u2 = UndoOp::IndexInsert { index: IndexId(1), key: vec![2] };
        let l2 = do_insert(&log, &pool, txn, l1, pid, 0, b"k1", u1.clone());
        let l3 = do_insert(&log, &pool, txn, l2, pid, 1, b"k2", u2.clone());
        log.flush_to(l3).unwrap();
        // No commit: loser.
        let handler = RecordingHandler(Mutex::new(Vec::new()));
        let report = recover(&log, &pool, &handler).unwrap();
        assert_eq!(report.losers, 1);
        assert_eq!(report.logical_undos, 2);
        let calls = handler.0.into_inner();
        assert_eq!(calls.len(), 2);
        // Reverse order: the k2 insert is undone first.
        assert_eq!(calls[0].1, u2);
        assert_eq!(calls[1].1, u1);
        // undo_next chains point backwards correctly.
        assert_eq!(calls[0].2, l2);
        assert_eq!(calls[1].2, l1);
    }

    #[test]
    fn physical_undo_restores_system_txn_pages() {
        let (log, pool) = setup();
        let txn = TxnId(9);
        let b = log.append(txn, Lsn::NULL, RecordBody::Begin { kind: TxnKind::System });
        let (pid, l1) = format_page(&log, &pool, txn, b);
        // Insert with a physical inverse (system transactions do this).
        let inverse = RedoOp::SlotRemove { idx: 0 };
        let l2 = do_insert(
            &log,
            &pool,
            txn,
            l1,
            pid,
            0,
            b"smo",
            UndoOp::Page { page: pid, op: inverse },
        );
        log.flush_to(l2).unwrap();
        let report = recover(&log, &pool, &NoopHandler).unwrap();
        assert_eq!(report.physical_undos, 1);
        // The slot is gone again.
        let page = pool.fetch(pid).unwrap();
        let mut g = page.write();
        let s = Slotted::wrap(&mut g.payload_mut()[PAYLOAD_HEADER_LEN..]);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn redo_is_idempotent_under_double_recovery() {
        let (log, pool) = setup();
        let txn = TxnId(1);
        let b = log.append(txn, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let (pid, l1) = format_page(&log, &pool, txn, b);
        let l2 = do_insert(&log, &pool, txn, l1, pid, 0, b"once", UndoOp::None);
        let c = log.append(txn, l2, RecordBody::Commit);
        log.flush_to(c).unwrap();
        let mut rng = txview_common::rng::Rng::new(1);
        pool.simulate_crash(0.5, &mut rng).unwrap();
        recover(&log, &pool, &NoopHandler).unwrap();
        // Second recovery over the already-recovered state must change
        // nothing (all redo skipped by the pageLSN test) — except that the
        // first recovery may have appended End records.
        let report2 = recover(&log, &pool, &NoopHandler).unwrap();
        assert_eq!(report2.redo_applied, 0);
        assert_eq!(slot0(&pool, pid), b"once");
    }

    #[test]
    fn clr_skips_already_undone_work() {
        let (log, pool) = setup();
        let txn = TxnId(1);
        let b = log.append(txn, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let (pid, l1) = format_page(&log, &pool, txn, b);
        let u1 = UndoOp::IndexInsert { index: IndexId(1), key: vec![1] };
        let l2 = do_insert(&log, &pool, txn, l1, pid, 0, b"k1", u1);
        let u2 = UndoOp::IndexInsert { index: IndexId(1), key: vec![2] };
        let l3 = do_insert(&log, &pool, txn, l2, pid, 1, b"k2", u2.clone());
        // Pretend runtime rollback already undid l3: a CLR pointing at l2.
        let clr = log.append(
            txn,
            l3,
            RecordBody::Clr {
                page: pid,
                redo: RedoOp::SlotRemove { idx: 1 },
                undo_next: l2,
            },
        );
        log.flush_to(clr).unwrap();
        let handler = RecordingHandler(Mutex::new(Vec::new()));
        let report = recover(&log, &pool, &handler).unwrap();
        // Only the k1 insert still needs logical undo.
        assert_eq!(report.logical_undos, 1);
        let calls = handler.0.into_inner();
        assert_eq!(calls.len(), 1);
        assert!(matches!(&calls[0].1, UndoOp::IndexInsert { key, .. } if key == &vec![1]));
    }

    #[test]
    fn checkpoint_bounds_analysis() {
        let (log, pool) = setup();
        // Txn 1 commits before the checkpoint.
        let t1 = TxnId(1);
        let b1 = log.append(t1, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let (pid, l1) = format_page(&log, &pool, t1, b1);
        let l2 = do_insert(&log, &pool, t1, l1, pid, 0, b"pre", UndoOp::None);
        let c1 = log.append(t1, l2, RecordBody::Commit);
        log.append(t1, c1, RecordBody::End);
        pool.flush_all().unwrap();
        log.write_checkpoint(vec![], vec![]).unwrap();
        // Txn 2 after the checkpoint, unfinished.
        let t2 = TxnId(2);
        let b2 = log.append(t2, Lsn::NULL, RecordBody::Begin { kind: TxnKind::User });
        let l3 = do_insert(&log, &pool, t2, b2, pid, 1, b"post", UndoOp::Page { page: pid, op: RedoOp::SlotRemove { idx: 1 } });
        log.flush_to(l3).unwrap();

        let total_records = log.read_durable_from(0).unwrap().len() as u64;
        let report = recover(&log, &pool, &NoopHandler).unwrap();
        assert!(report.analysis_records < total_records, "analysis starts at checkpoint");
        assert_eq!(report.losers, 1);
        // Committed pre-checkpoint data survives; loser insert rolled back.
        assert_eq!(slot0(&pool, pid), b"pre");
        let page = pool.fetch(pid).unwrap();
        let mut g = page.write();
        let s = Slotted::wrap(&mut g.payload_mut()[PAYLOAD_HEADER_LEN..]);
        assert_eq!(s.count(), 1);
    }
}
