//! Fault-injecting [`LogStore`]: the WAL-side twin of
//! `txview_storage::fault::FaultDisk`, sharing the same [`FaultClock`].
//!
//! Appends and syncs tick the clock; once a crash fires, the first
//! mutation freezes the durable bytes (and master pointer) and later
//! appends land only in the doomed live state. A torn append keeps a
//! prefix of the group-flush buffer — the torn tail that
//! `LogManager::read_durable_from` must stop at cleanly.
//!
//! The store can also model a *slow* device: [`FaultLogStore::set_sync_latency`]
//! spins each sync for a seeded pseudo-random number of microseconds, which
//! is what makes group-commit overlap (one fsync absorbing many commits)
//! measurable on hosts where the in-memory sync would otherwise be free.

use crate::log::LogStore;
use parking_lot::Mutex;
use std::sync::Arc;
use txview_common::rng::Rng;
use txview_common::{Error, Lsn, Result};
use txview_storage::fault::{FaultClock, FaultDecision, FaultPoint};

#[derive(Clone)]
struct LogState {
    bytes: Vec<u8>,
    master: (u64, Lsn),
    epoch: u64,
}

/// Seeded synthetic sync latency: `base_us` plus up to `jitter_us` of
/// deterministic pseudo-random jitter per sync.
struct SyncLatency {
    base_us: u64,
    jitter_us: u64,
    rng: Rng,
}

struct LogShared {
    clock: Arc<FaultClock>,
    live: Mutex<LogState>,
    frozen: Mutex<Option<LogState>>,
    sync_latency: Mutex<Option<SyncLatency>>,
}

/// Fault-injecting in-memory log store. Cloning yields a handle to the
/// same store, so the torture harness keeps one across the `Database`'s
/// lifetime and calls [`FaultLogStore::crash_restore`] after dropping it.
#[derive(Clone)]
pub struct FaultLogStore {
    inner: Arc<LogShared>,
}

impl FaultLogStore {
    /// New empty store ticking `clock`.
    pub fn new(clock: Arc<FaultClock>) -> FaultLogStore {
        FaultLogStore {
            inner: Arc::new(LogShared {
                clock,
                live: Mutex::new(LogState {
                    bytes: Vec::new(),
                    master: (0, Lsn::NULL),
                    epoch: 0,
                }),
                frozen: Mutex::new(None),
                sync_latency: Mutex::new(None),
            }),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.inner.clock
    }

    /// Make each sync spin for `base_us` plus a seeded jitter in
    /// `[0, jitter_us]` microseconds of wall time, modelling a real fsync
    /// on a device with that latency profile. Pass `base_us = 0,
    /// jitter_us = 0` to turn the latency back off.
    pub fn set_sync_latency(&self, base_us: u64, jitter_us: u64, seed: u64) {
        let mut slot = self.inner.sync_latency.lock();
        *slot = if base_us == 0 && jitter_us == 0 {
            None
        } else {
            Some(SyncLatency { base_us, jitter_us, rng: Rng::new(seed ^ 0x5f3c_9a1d_77e4_0b25) })
        };
    }

    fn maybe_freeze(&self) {
        if self.inner.clock.fired() {
            let mut frozen = self.inner.frozen.lock();
            if frozen.is_none() {
                *frozen = Some(self.inner.live.lock().clone());
            }
        }
    }

    /// Reboot onto the durable bytes: discard everything appended after
    /// the crash point. Returns whether a frozen image existed.
    pub fn crash_restore(&self) -> bool {
        match self.inner.frozen.lock().take() {
            Some(f) => {
                *self.inner.live.lock() = f;
                true
            }
            None => false,
        }
    }

    /// Replace the durable contents wholesale: log bytes, master pointer,
    /// and epoch, discarding any frozen crash image. This is the
    /// snapshot-install path on a follower whose log has diverged from the
    /// leader's — resuming frame-by-frame is impossible, so the whole
    /// durable state is shipped and installed atomically.
    pub fn install_snapshot(&self, bytes: Vec<u8>, master: (u64, Lsn), epoch: u64) {
        *self.inner.frozen.lock() = None;
        *self.inner.live.lock() = LogState { bytes, master, epoch };
    }

    /// Raw durable bytes (the whole log), for shipping a snapshot or
    /// fingerprinting byte-identical convergence.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.inner.live.lock().bytes.clone()
    }
}

fn transient_io_error() -> Error {
    Error::IoTransient(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "injected transient i/o fault",
    ))
}

impl LogStore for FaultLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::LogAppend);
        self.maybe_freeze();
        match decision {
            FaultDecision::TransientError => Err(transient_io_error()),
            FaultDecision::Tear => {
                // Half the group-flush buffer reached the disk; the framed
                // decoder must stop cleanly at this torn tail.
                let keep = bytes.len() / 2;
                self.inner.live.lock().bytes.extend_from_slice(&bytes[..keep]);
                Ok(())
            }
            FaultDecision::Proceed => {
                self.inner.live.lock().bytes.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::LogSync);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        let spin_us = {
            let mut slot = self.inner.sync_latency.lock();
            slot.as_mut().map(|l| l.base_us + l.rng.below(l.jitter_us + 1))
        };
        if let Some(us) = spin_us {
            // Timed loop rather than sleep: sub-millisecond sleeps are
            // rounded up by the OS scheduler. But yield inside the loop —
            // a real fsync is a *blocking* syscall, so during the device
            // wait the core belongs to other runnable threads (on a small
            // host, exactly the committers group commit wants to batch
            // behind the in-flight sync). A pure spin starves them and
            // inverts every serial-vs-pipelined comparison measured on
            // fewer cores than committers.
            let start = std::time::Instant::now();
            while (start.elapsed().as_micros() as u64) < us {
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    fn len_bytes(&self) -> Result<u64> {
        Ok(self.inner.live.lock().bytes.len() as u64)
    }

    fn read_from(&self, offset: u64) -> Result<Vec<u8>> {
        let st = self.inner.live.lock();
        Ok(st.bytes[(offset as usize).min(st.bytes.len())..].to_vec())
    }

    fn set_master(&self, offset: u64, lsn: Lsn) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::MasterWrite);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        self.inner.live.lock().master = (offset, lsn);
        Ok(())
    }

    fn get_master(&self) -> Result<(u64, Lsn)> {
        Ok(self.inner.live.lock().master)
    }

    fn set_epoch(&self, epoch: u64) -> Result<()> {
        // Epoch bumps ride the master-write durability seam: a promotion is
        // not real until the term number reaches stable storage.
        let decision = self.inner.clock.tick(FaultPoint::MasterWrite);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        self.inner.live.lock().epoch = epoch;
        Ok(())
    }

    fn get_epoch(&self) -> Result<u64> {
        Ok(self.inner.live.lock().epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_storage::fault::{FaultKind, FaultSchedule};

    #[test]
    fn crash_freezes_appended_prefix() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.append(b"before").unwrap();
        clock.arm(&FaultSchedule::crash_at(0));
        store.append(b"doomed").unwrap();
        assert_eq!(store.read_from(0).unwrap(), b"beforedoomed");
        assert!(store.crash_restore());
        assert_eq!(store.read_from(0).unwrap(), b"before");
    }

    #[test]
    fn torn_append_keeps_half() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::TornWrite)] });
        store.append(b"abcdef").unwrap();
        assert_eq!(store.read_from(0).unwrap(), b"abc");
    }

    #[test]
    fn master_pointer_is_frozen_with_bytes() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.set_master(1, Lsn(1)).unwrap();
        clock.arm(&FaultSchedule::crash_at(0));
        store.set_master(9, Lsn(9)).unwrap();
        assert_eq!(store.get_master().unwrap(), (9, Lsn(9)));
        assert!(store.crash_restore());
        assert_eq!(store.get_master().unwrap(), (1, Lsn(1)));
    }

    #[test]
    fn epoch_is_frozen_and_restored_with_the_crash_image() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.set_epoch(3).unwrap();
        clock.arm(&FaultSchedule::crash_at(0));
        store.set_epoch(9).unwrap();
        assert_eq!(store.get_epoch().unwrap(), 9);
        assert!(store.crash_restore());
        assert_eq!(store.get_epoch().unwrap(), 3);
    }

    #[test]
    fn install_snapshot_replaces_everything() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.append(b"old").unwrap();
        store.set_master(1, Lsn(1)).unwrap();
        store.install_snapshot(b"new-bytes".to_vec(), (7, Lsn(7)), 2);
        assert_eq!(store.read_from(0).unwrap(), b"new-bytes");
        assert_eq!(store.get_master().unwrap(), (7, Lsn(7)));
        assert_eq!(store.get_epoch().unwrap(), 2);
    }

    #[test]
    fn seeded_sync_latency_is_deterministic_in_sequence() {
        let clock = FaultClock::new();
        let a = FaultLogStore::new(Arc::clone(&clock));
        a.set_sync_latency(5, 10, 42);
        // The latency plan is a pure function of the seed; two stores with
        // the same seed draw the same jitter sequence. We can't observe the
        // spin directly without timing flakiness, so check the plan by
        // drawing from an identically-seeded Rng.
        let mut expect = Rng::new(42 ^ 0x5f3c_9a1d_77e4_0b25);
        let first = 5 + expect.below(11);
        assert!(first >= 5 && first <= 15);
        // And syncing still succeeds with latency armed.
        a.sync().unwrap();
        a.set_sync_latency(0, 0, 0);
        a.sync().unwrap();
    }
}
