//! Fault-injecting [`LogStore`]: the WAL-side twin of
//! `txview_storage::fault::FaultDisk`, sharing the same [`FaultClock`].
//!
//! Appends and syncs tick the clock; once a crash fires, the first
//! mutation freezes the durable bytes (and master pointer) and later
//! appends land only in the doomed live state. A torn append keeps a
//! prefix of the group-flush buffer — the torn tail that
//! `LogManager::read_durable_from` must stop at cleanly.

use crate::log::LogStore;
use parking_lot::Mutex;
use std::sync::Arc;
use txview_common::{Error, Lsn, Result};
use txview_storage::fault::{FaultClock, FaultDecision, FaultPoint};

#[derive(Clone)]
struct LogState {
    bytes: Vec<u8>,
    master: (u64, Lsn),
}

struct LogShared {
    clock: Arc<FaultClock>,
    live: Mutex<LogState>,
    frozen: Mutex<Option<LogState>>,
}

/// Fault-injecting in-memory log store. Cloning yields a handle to the
/// same store, so the torture harness keeps one across the `Database`'s
/// lifetime and calls [`FaultLogStore::crash_restore`] after dropping it.
#[derive(Clone)]
pub struct FaultLogStore {
    inner: Arc<LogShared>,
}

impl FaultLogStore {
    /// New empty store ticking `clock`.
    pub fn new(clock: Arc<FaultClock>) -> FaultLogStore {
        FaultLogStore {
            inner: Arc::new(LogShared {
                clock,
                live: Mutex::new(LogState { bytes: Vec::new(), master: (0, Lsn::NULL) }),
                frozen: Mutex::new(None),
            }),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.inner.clock
    }

    fn maybe_freeze(&self) {
        if self.inner.clock.fired() {
            let mut frozen = self.inner.frozen.lock();
            if frozen.is_none() {
                *frozen = Some(self.inner.live.lock().clone());
            }
        }
    }

    /// Reboot onto the durable bytes: discard everything appended after
    /// the crash point. Returns whether a frozen image existed.
    pub fn crash_restore(&self) -> bool {
        match self.inner.frozen.lock().take() {
            Some(f) => {
                *self.inner.live.lock() = f;
                true
            }
            None => false,
        }
    }
}

fn transient_io_error() -> Error {
    Error::IoTransient(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "injected transient i/o fault",
    ))
}

impl LogStore for FaultLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::LogAppend);
        self.maybe_freeze();
        match decision {
            FaultDecision::TransientError => Err(transient_io_error()),
            FaultDecision::Tear => {
                // Half the group-flush buffer reached the disk; the framed
                // decoder must stop cleanly at this torn tail.
                let keep = bytes.len() / 2;
                self.inner.live.lock().bytes.extend_from_slice(&bytes[..keep]);
                Ok(())
            }
            FaultDecision::Proceed => {
                self.inner.live.lock().bytes.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::LogSync);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        Ok(())
    }

    fn len_bytes(&self) -> Result<u64> {
        Ok(self.inner.live.lock().bytes.len() as u64)
    }

    fn read_from(&self, offset: u64) -> Result<Vec<u8>> {
        let st = self.inner.live.lock();
        Ok(st.bytes[(offset as usize).min(st.bytes.len())..].to_vec())
    }

    fn set_master(&self, offset: u64, lsn: Lsn) -> Result<()> {
        let decision = self.inner.clock.tick(FaultPoint::MasterWrite);
        self.maybe_freeze();
        if decision == FaultDecision::TransientError {
            return Err(transient_io_error());
        }
        self.inner.live.lock().master = (offset, lsn);
        Ok(())
    }

    fn get_master(&self) -> Result<(u64, Lsn)> {
        Ok(self.inner.live.lock().master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_storage::fault::{FaultKind, FaultSchedule};

    #[test]
    fn crash_freezes_appended_prefix() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.append(b"before").unwrap();
        clock.arm(&FaultSchedule::crash_at(0));
        store.append(b"doomed").unwrap();
        assert_eq!(store.read_from(0).unwrap(), b"beforedoomed");
        assert!(store.crash_restore());
        assert_eq!(store.read_from(0).unwrap(), b"before");
    }

    #[test]
    fn torn_append_keeps_half() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::TornWrite)] });
        store.append(b"abcdef").unwrap();
        assert_eq!(store.read_from(0).unwrap(), b"abc");
    }

    #[test]
    fn master_pointer_is_frozen_with_bytes() {
        let clock = FaultClock::new();
        let store = FaultLogStore::new(Arc::clone(&clock));
        store.set_master(1, Lsn(1)).unwrap();
        clock.arm(&FaultSchedule::crash_at(0));
        store.set_master(9, Lsn(9)).unwrap();
        assert_eq!(store.get_master().unwrap(), (9, Lsn(9)));
        assert!(store.crash_restore());
        assert_eq!(store.get_master().unwrap(), (1, Lsn(1)));
    }
}
