//! # txview-wal
//!
//! ARIES-style write-ahead logging, specialised with exactly the machinery
//! the reproduced paper (Graefe & Zwilling, SIGMOD 2004) requires:
//!
//! * **physiological redo** — every page modification is logged as a slot-
//!   level operation ([`record::RedoOp`]) that is re-applied iff
//!   `pageLSN < recordLSN`, so redo is idempotent even for escrow
//!   increments (the redo image is the *result* bytes);
//! * **logical undo** — escrow deltas and B-tree key operations carry an
//!   [`record::UndoOp`] descriptor that is undone *logically* (inverse
//!   delta / ghosting the key) through a resource-manager callback, because
//!   physical before-images are wrong once concurrent increments on the
//!   same record have committed in between;
//! * **compensation log records** (CLRs) chaining `undo_next`, so rollback
//!   and crash-undo never undo an undo;
//! * **system transactions** (nested top actions) for structure
//!   modifications: short, redo-logged, physically undone if caught
//!   in-flight by a crash, and never undone once committed — even if the
//!   user transaction that triggered them rolls back;
//! * **fuzzy checkpoints** recording the active-transaction table and the
//!   dirty-page table;
//! * the classic **analysis / redo / undo** recovery driver.

pub mod fault;
pub mod log;
pub mod record;
pub mod recovery;

pub use fault::FaultLogStore;
pub use log::{FileLogStore, LogManager, LogStore, MemLogStore};
pub use record::{LogRecord, RecordBody, RedoOp, TxnKind, UndoOp, ValueDelta};
pub use recovery::{recover, redo_record, RecoveryReport, UndoHandler};
