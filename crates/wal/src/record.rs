//! Log record types and their binary encoding.
//!
//! A record on the wire:
//!
//! ```text
//! [ total_len:u32 | checksum:u64 | lsn:u64 | prev_lsn:u64 | txn:u64 | body ]
//! ```
//!
//! `prev_lsn` back-chains the records of one transaction (used by rollback
//! and crash-undo). The checksum covers everything after itself; a torn tail
//! after a crash is detected and treated as end-of-log.

use txview_common::codec::{checksum64, Reader, Writer};
use txview_common::{Error, IndexId, Lsn, PageId, Result, TxnId, Value};
use txview_storage::page::PageType;
use txview_storage::slotted::Slotted;

/// Numeric delta applied to one column of a view record (escrow op).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ValueDelta {
    /// Integer delta (COUNT_BIG and integer SUM columns).
    Int(i64),
    /// Float delta (float SUM columns).
    Float(f64),
}

impl ValueDelta {
    /// The inverse delta (for logical undo / rollback).
    pub fn inverse(self) -> ValueDelta {
        match self {
            ValueDelta::Int(v) => ValueDelta::Int(-v),
            ValueDelta::Float(v) => ValueDelta::Float(-v),
        }
    }

    /// Apply to a [`Value`] (NULL is treated as zero, per SUM semantics).
    pub fn apply_to(self, v: &Value) -> Result<Value> {
        match self {
            ValueDelta::Int(d) => v.numeric_add(&Value::Int(d)),
            ValueDelta::Float(d) => v.numeric_add(&Value::Float(d)),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            ValueDelta::Int(v) => {
                w.u8(1).i64(*v);
            }
            ValueDelta::Float(v) => {
                w.u8(2).f64(*v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<ValueDelta> {
        Ok(match r.u8()? {
            1 => ValueDelta::Int(r.i64()?),
            2 => ValueDelta::Float(r.f64()?),
            t => return Err(Error::corruption(format!("bad delta tag {t}"))),
        })
    }
}

/// Physiological redo operation: re-applied to a single page, idempotently
/// guarded by the pageLSN test. Slot indices refer to the page's slotted
/// area; `Patch` offsets are payload-relative (used for node headers).
#[derive(Clone, PartialEq, Debug)]
pub enum RedoOp {
    /// (Re)format the page with the given type and empty slotted area
    /// preceded by `header_len` reserved header bytes.
    FormatPage {
        /// Page-type tag (see `PageType`).
        ty: u8,
        /// Reserved node-header bytes before the slotted area.
        header_len: u16,
    },
    /// Raw patch of payload bytes (node header fields).
    Patch {
        /// Payload-relative byte offset.
        off: u16,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Insert `bytes` as a new slot at `idx`.
    SlotInsert {
        /// Slot position.
        idx: u16,
        /// Record bytes.
        bytes: Vec<u8>,
    },
    /// Remove slot `idx`.
    SlotRemove {
        /// Slot position.
        idx: u16,
    },
    /// Replace slot `idx` with `bytes`.
    SlotUpdate {
        /// Slot position.
        idx: u16,
        /// Replacement record bytes.
        bytes: Vec<u8>,
    },
    /// Patch bytes inside slot `idx` at record offset `off` (ghost bit,
    /// escrow counter result image).
    SlotPatch {
        /// Slot position.
        idx: u16,
        /// Record-relative byte offset.
        off: u16,
        /// Replacement bytes (result image — redo is idempotent via LSN).
        bytes: Vec<u8>,
    },
}

impl RedoOp {
    /// Apply this operation to a page payload. `header_len` bytes at the
    /// start of the payload are reserved for the node header; the slotted
    /// area begins after them.
    pub fn apply(&self, payload: &mut [u8], header_len: usize) -> Result<()> {
        match self {
            RedoOp::FormatPage { header_len: h, .. } => {
                payload.fill(0);
                Slotted::format(&mut payload[*h as usize..]);
            }
            RedoOp::Patch { off, bytes } => {
                let off = *off as usize;
                payload[off..off + bytes.len()].copy_from_slice(bytes);
            }
            RedoOp::SlotInsert { idx, bytes } => {
                Slotted::wrap(&mut payload[header_len..]).insert_at(*idx as usize, bytes)?;
            }
            RedoOp::SlotRemove { idx } => {
                Slotted::wrap(&mut payload[header_len..]).remove_at(*idx as usize);
            }
            RedoOp::SlotUpdate { idx, bytes } => {
                Slotted::wrap(&mut payload[header_len..]).update_at(*idx as usize, bytes)?;
            }
            RedoOp::SlotPatch { idx, off, bytes } => {
                let mut s = Slotted::wrap(&mut payload[header_len..]);
                let rec = s.get_mut(*idx as usize);
                let off = *off as usize;
                rec[off..off + bytes.len()].copy_from_slice(bytes);
            }
        }
        Ok(())
    }

    /// The page type a `FormatPage` op creates (needed when redo must
    /// recreate a never-flushed page).
    pub fn format_type(&self) -> Option<PageType> {
        match self {
            RedoOp::FormatPage { ty, .. } => match ty {
                2 => Some(PageType::BTreeLeaf),
                3 => Some(PageType::BTreeInterior),
                4 => Some(PageType::Catalog),
                5 => Some(PageType::HashBucket),
                _ => Some(PageType::Free),
            },
            _ => None,
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            RedoOp::FormatPage { ty, header_len } => {
                w.u8(1).u8(*ty).u16(*header_len);
            }
            RedoOp::Patch { off, bytes } => {
                w.u8(2).u16(*off).bytes(bytes);
            }
            RedoOp::SlotInsert { idx, bytes } => {
                w.u8(3).u16(*idx).bytes(bytes);
            }
            RedoOp::SlotRemove { idx } => {
                w.u8(4).u16(*idx);
            }
            RedoOp::SlotUpdate { idx, bytes } => {
                w.u8(5).u16(*idx).bytes(bytes);
            }
            RedoOp::SlotPatch { idx, off, bytes } => {
                w.u8(6).u16(*idx).u16(*off).bytes(bytes);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<RedoOp> {
        Ok(match r.u8()? {
            1 => RedoOp::FormatPage { ty: r.u8()?, header_len: r.u16()? },
            2 => RedoOp::Patch { off: r.u16()?, bytes: r.bytes()?.to_vec() },
            3 => RedoOp::SlotInsert { idx: r.u16()?, bytes: r.bytes()?.to_vec() },
            4 => RedoOp::SlotRemove { idx: r.u16()? },
            5 => RedoOp::SlotUpdate { idx: r.u16()?, bytes: r.bytes()?.to_vec() },
            6 => RedoOp::SlotPatch { idx: r.u16()?, off: r.u16()?, bytes: r.bytes()?.to_vec() },
            t => return Err(Error::corruption(format!("bad redo tag {t}"))),
        })
    }
}

/// Undo descriptor. `Page` variants are *physical* (system transactions —
/// splits, ghost cleanup); the rest are *logical* and handled by the engine
/// resource manager, which re-traverses the index by key.
#[derive(Clone, PartialEq, Debug)]
pub enum UndoOp {
    /// Redo-only record (CLRs, commits, and committed-system-txn work).
    None,
    /// Physical page-level inverse (system transactions only).
    Page {
        /// The page to apply the inverse to.
        page: PageId,
        /// The inverse operation.
        op: RedoOp,
    },
    /// Undo an index insert: ghost/delete `key`.
    IndexInsert {
        /// Target index.
        index: IndexId,
        /// Encoded key bytes.
        key: Vec<u8>,
    },
    /// Undo an index delete (ghosting): resurrect `key` with `row` bytes.
    IndexDelete {
        /// Target index.
        index: IndexId,
        /// Encoded key bytes.
        key: Vec<u8>,
        /// Record value bytes for defensive re-insertion.
        row: Vec<u8>,
    },
    /// Undo an index update: restore `old_row` under `key`.
    IndexUpdate {
        /// Target index.
        index: IndexId,
        /// Encoded key bytes.
        key: Vec<u8>,
        /// The pre-update value bytes.
        old_row: Vec<u8>,
    },
    /// Undo an escrow delta: apply the inverse deltas to `key`'s record.
    /// `deltas` holds `(region position, delta)` pairs as originally applied.
    Escrow {
        /// The view's index.
        index: IndexId,
        /// Encoded group-key bytes.
        key: Vec<u8>,
        /// Forward pairs as logged (undo applies their inverses).
        deltas: Vec<(u16, ValueDelta)>,
    },
}

impl UndoOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            UndoOp::None => {
                w.u8(0);
            }
            UndoOp::Page { page, op } => {
                w.u8(1).page(*page);
                op.encode(w);
            }
            UndoOp::IndexInsert { index, key } => {
                w.u8(2).u32(index.0).bytes(key);
            }
            UndoOp::IndexDelete { index, key, row } => {
                w.u8(3).u32(index.0).bytes(key).bytes(row);
            }
            UndoOp::IndexUpdate { index, key, old_row } => {
                w.u8(4).u32(index.0).bytes(key).bytes(old_row);
            }
            UndoOp::Escrow { index, key, deltas } => {
                w.u8(5).u32(index.0).bytes(key);
                w.u16(deltas.len() as u16);
                for (col, d) in deltas {
                    w.u16(*col);
                    d.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<UndoOp> {
        Ok(match r.u8()? {
            0 => UndoOp::None,
            1 => UndoOp::Page { page: r.page()?, op: RedoOp::decode(r)? },
            2 => UndoOp::IndexInsert { index: IndexId(r.u32()?), key: r.bytes()?.to_vec() },
            3 => UndoOp::IndexDelete {
                index: IndexId(r.u32()?),
                key: r.bytes()?.to_vec(),
                row: r.bytes()?.to_vec(),
            },
            4 => UndoOp::IndexUpdate {
                index: IndexId(r.u32()?),
                key: r.bytes()?.to_vec(),
                old_row: r.bytes()?.to_vec(),
            },
            5 => {
                let index = IndexId(r.u32()?);
                let key = r.bytes()?.to_vec();
                let n = r.u16()? as usize;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = r.u16()?;
                    deltas.push((col, ValueDelta::decode(r)?));
                }
                UndoOp::Escrow { index, key, deltas }
            }
            t => return Err(Error::corruption(format!("bad undo tag {t}"))),
        })
    }
}

/// Whether a transaction is a user transaction or a system transaction
/// (nested top action for structure modifications / ghost cleanup).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnKind {
    /// Ordinary user transaction.
    User,
    /// System transaction: commits independently; physically undone if
    /// caught in-flight by a crash.
    System,
}

/// The variants a log record body can take.
#[derive(Clone, PartialEq, Debug)]
pub enum RecordBody {
    /// Transaction begin.
    Begin {
        /// User or system transaction.
        kind: TxnKind,
    },
    /// Transaction commit (durable once this record is flushed).
    Commit,
    /// Rollback has started (records after this are CLRs).
    Abort,
    /// Transaction fully finished (after commit or complete rollback).
    End,
    /// A page modification with its redo image and undo descriptor.
    Update {
        /// The modified page.
        page: PageId,
        /// Physiological redo operation.
        redo: RedoOp,
        /// Undo descriptor (logical, physical, or none).
        undo: UndoOp,
    },
    /// Compensation record: the redo image of one undo step;
    /// `undo_next` points at the next record to undo.
    Clr {
        /// The modified page.
        page: PageId,
        /// Physiological redo of the undo step.
        redo: RedoOp,
        /// Where undo continues after this compensation.
        undo_next: Lsn,
    },
    /// Fuzzy checkpoint: active transactions and dirty pages.
    Checkpoint {
        /// (txn, kind, last LSN) of each transaction active at checkpoint.
        active: Vec<(TxnId, TxnKind, Lsn)>,
        /// (page, recLSN) of each dirty page at checkpoint.
        dirty: Vec<(PageId, Lsn)>,
    },
}

/// A fully decoded log record.
#[derive(Clone, PartialEq, Debug)]
pub struct LogRecord {
    /// This record's LSN.
    pub lsn: Lsn,
    /// Previous record of the same transaction (back-chain), or null.
    pub prev_lsn: Lsn,
    /// Owning transaction (TxnId::NONE for checkpoints).
    pub txn: TxnId,
    /// Payload.
    pub body: RecordBody,
}

impl LogRecord {
    /// Encode including framing (length + checksum).
    pub fn encode_framed(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.lsn(self.lsn).lsn(self.prev_lsn).txn(self.txn);
        match &self.body {
            RecordBody::Begin { kind } => {
                w.u8(1).u8(match kind {
                    TxnKind::User => 0,
                    TxnKind::System => 1,
                });
            }
            RecordBody::Commit => {
                w.u8(2);
            }
            RecordBody::Abort => {
                w.u8(3);
            }
            RecordBody::End => {
                w.u8(4);
            }
            RecordBody::Update { page, redo, undo } => {
                w.u8(5).page(*page);
                redo.encode(&mut w);
                undo.encode(&mut w);
            }
            RecordBody::Clr { page, redo, undo_next } => {
                w.u8(6).page(*page);
                redo.encode(&mut w);
                w.lsn(*undo_next);
            }
            RecordBody::Checkpoint { active, dirty } => {
                w.u8(7);
                w.u32(active.len() as u32);
                for (t, k, l) in active {
                    w.txn(*t)
                        .u8(match k {
                            TxnKind::User => 0,
                            TxnKind::System => 1,
                        })
                        .lsn(*l);
                }
                w.u32(dirty.len() as u32);
                for (p, l) in dirty {
                    w.page(*p).lsn(*l);
                }
            }
        }
        let payload = w.into_bytes();
        let mut framed = Writer::with_capacity(payload.len() + 12);
        framed.u32(payload.len() as u32);
        framed.u64(checksum64(&payload));
        framed.raw(&payload);
        framed.into_bytes()
    }

    /// Decode one framed record from `buf`, returning it and the bytes
    /// consumed. Returns `Ok(None)` for a clean end / torn tail.
    pub fn decode_framed(buf: &[u8]) -> Result<Option<(LogRecord, usize)>> {
        if buf.len() < 12 {
            return Ok(None);
        }
        let mut r = Reader::new(buf);
        let len = r.u32()? as usize;
        let sum = r.u64()?;
        if buf.len() < 12 + len {
            return Ok(None); // torn tail
        }
        let payload = &buf[12..12 + len];
        if checksum64(payload) != sum {
            return Ok(None); // torn / corrupt tail ends the log
        }
        let mut r = Reader::new(payload);
        let lsn = r.lsn()?;
        let prev_lsn = r.lsn()?;
        let txn = r.txn()?;
        let body = match r.u8()? {
            1 => RecordBody::Begin {
                kind: match r.u8()? {
                    0 => TxnKind::User,
                    _ => TxnKind::System,
                },
            },
            2 => RecordBody::Commit,
            3 => RecordBody::Abort,
            4 => RecordBody::End,
            5 => RecordBody::Update {
                page: r.page()?,
                redo: RedoOp::decode(&mut r)?,
                undo: UndoOp::decode(&mut r)?,
            },
            6 => RecordBody::Clr {
                page: r.page()?,
                redo: RedoOp::decode(&mut r)?,
                undo_next: r.lsn()?,
            },
            7 => {
                let na = r.u32()? as usize;
                let mut active = Vec::with_capacity(na);
                for _ in 0..na {
                    let t = r.txn()?;
                    let k = if r.u8()? == 0 { TxnKind::User } else { TxnKind::System };
                    let l = r.lsn()?;
                    active.push((t, k, l));
                }
                let nd = r.u32()? as usize;
                let mut dirty = Vec::with_capacity(nd);
                for _ in 0..nd {
                    dirty.push((r.page()?, r.lsn()?));
                }
                RecordBody::Checkpoint { active, dirty }
            }
            t => return Err(Error::corruption(format!("bad record tag {t}"))),
        };
        Ok(Some((LogRecord { lsn, prev_lsn, txn, body }, 12 + len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &LogRecord) {
        let bytes = rec.encode_framed();
        let (back, used) = LogRecord::decode_framed(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(&back, rec);
    }

    #[test]
    fn roundtrip_all_bodies() {
        let bodies = vec![
            RecordBody::Begin { kind: TxnKind::User },
            RecordBody::Begin { kind: TxnKind::System },
            RecordBody::Commit,
            RecordBody::Abort,
            RecordBody::End,
            RecordBody::Update {
                page: PageId(3),
                redo: RedoOp::SlotInsert { idx: 2, bytes: vec![1, 2, 3] },
                undo: UndoOp::IndexInsert { index: IndexId(7), key: vec![9] },
            },
            RecordBody::Update {
                page: PageId(3),
                redo: RedoOp::SlotPatch { idx: 0, off: 4, bytes: vec![0xFF] },
                undo: UndoOp::Escrow {
                    index: IndexId(1),
                    key: vec![1, 2],
                    deltas: vec![(2, ValueDelta::Int(-5)), (3, ValueDelta::Float(1.5))],
                },
            },
            RecordBody::Clr {
                page: PageId(9),
                redo: RedoOp::SlotRemove { idx: 1 },
                undo_next: Lsn(17),
            },
            RecordBody::Checkpoint {
                active: vec![(TxnId(5), TxnKind::User, Lsn(40))],
                dirty: vec![(PageId(1), Lsn(30)), (PageId(2), Lsn(35))],
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            roundtrip(&LogRecord {
                lsn: Lsn(100 + i as u64),
                prev_lsn: Lsn(50),
                txn: TxnId(8),
                body,
            });
        }
    }

    #[test]
    fn torn_tail_returns_none() {
        let rec = LogRecord {
            lsn: Lsn(1),
            prev_lsn: Lsn::NULL,
            txn: TxnId(1),
            body: RecordBody::Commit,
        };
        let bytes = rec.encode_framed();
        for cut in 0..bytes.len() {
            assert!(LogRecord::decode_framed(&bytes[..cut]).unwrap().is_none());
        }
    }

    #[test]
    fn corrupt_payload_returns_none() {
        let rec = LogRecord {
            lsn: Lsn(1),
            prev_lsn: Lsn::NULL,
            txn: TxnId(1),
            body: RecordBody::Commit,
        };
        let mut bytes = rec.encode_framed();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(LogRecord::decode_framed(&bytes).unwrap().is_none());
    }

    #[test]
    fn delta_inverse_and_apply() {
        let d = ValueDelta::Int(5);
        assert_eq!(d.inverse(), ValueDelta::Int(-5));
        assert_eq!(d.apply_to(&Value::Int(10)).unwrap(), Value::Int(15));
        assert_eq!(d.apply_to(&Value::Null).unwrap(), Value::Int(5));
        let f = ValueDelta::Float(-0.5);
        assert_eq!(f.apply_to(&Value::Float(2.0)).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn redo_ops_apply_to_payload() {
        let mut payload = vec![0u8; 256];
        RedoOp::FormatPage { ty: 2, header_len: 16 }
            .apply(&mut payload, 16)
            .unwrap();
        RedoOp::SlotInsert { idx: 0, bytes: vec![7, 8, 9] }
            .apply(&mut payload, 16)
            .unwrap();
        RedoOp::SlotInsert { idx: 1, bytes: vec![1, 1] }
            .apply(&mut payload, 16)
            .unwrap();
        RedoOp::SlotPatch { idx: 0, off: 1, bytes: vec![0xAA] }
            .apply(&mut payload, 16)
            .unwrap();
        {
            let mut tmp = payload.clone();
            let s = Slotted::wrap(&mut tmp[16..]);
            assert_eq!(s.get(0), &[7, 0xAA, 9]);
            assert_eq!(s.count(), 2);
        }
        RedoOp::SlotRemove { idx: 0 }.apply(&mut payload, 16).unwrap();
        RedoOp::SlotUpdate { idx: 0, bytes: vec![5] }
            .apply(&mut payload, 16)
            .unwrap();
        let s = Slotted::wrap(&mut payload[16..]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.get(0), &[5]);
        RedoOp::Patch { off: 200, bytes: vec![1, 2] }
            .apply(&mut payload, 16)
            .unwrap();
        assert_eq!(&payload[200..202], &[1, 2]);
    }

    #[test]
    fn format_type_mapping() {
        assert_eq!(
            RedoOp::FormatPage { ty: 2, header_len: 0 }.format_type(),
            Some(PageType::BTreeLeaf)
        );
        assert_eq!(RedoOp::SlotRemove { idx: 0 }.format_type(), None);
    }
}
