//! Multi-threaded, fixed-duration workload driver.
//!
//! Each [`WorkerSpec`] describes a group of identical workers (same
//! operation closure, same isolation level). The driver runs every group
//! for the given wall-clock duration and reports per-group commits,
//! aborts by cause, and latency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txview_common::obs::{HistSnapshot, Histogram};
use txview_common::rng::Rng;
use txview_common::{Error, Result};
use txview_engine::{Database, IsolationLevel, Transaction};

/// Operation closure: one transaction body. `seq` is a per-worker sequence
/// number useful for generating unique keys.
pub type OpFn =
    dyn Fn(&Database, &mut Transaction, &mut Rng, u64) -> Result<()> + Send + Sync;

/// A group of identical workers.
pub struct WorkerSpec {
    /// Group label for reporting.
    pub name: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Isolation level for the group's transactions.
    pub isolation: IsolationLevel,
    /// The transaction body.
    pub op: Arc<OpFn>,
}

/// Per-group outcome counters.
#[derive(Clone, Debug, Default)]
pub struct GroupResult {
    /// Group label.
    pub name: String,
    /// Committed transactions.
    pub committed: u64,
    /// Deadlock-victim aborts.
    pub deadlocks: u64,
    /// Lock-timeout aborts.
    pub timeouts: u64,
    /// Other errors (each rolled back and not retried).
    pub errors: u64,
    /// Sum of commit latencies in microseconds.
    pub latency_us_total: u64,
    /// Commit-latency distribution (µs, log₂ buckets) — p50/p95/p99 via
    /// [`HistSnapshot::quantile`].
    pub latency: HistSnapshot,
    /// Measured wall-clock seconds.
    pub elapsed_s: f64,
}

impl GroupResult {
    /// Commits per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            return 0.0;
        }
        self.committed as f64 / self.elapsed_s
    }

    /// Mean commit latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.latency_us_total as f64 / self.committed as f64
    }

    /// All aborts (deadlocks + timeouts).
    pub fn aborts(&self) -> u64 {
        self.deadlocks + self.timeouts
    }

    /// Abort rate relative to attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborts();
        if attempts == 0 {
            return 0.0;
        }
        self.aborts() as f64 / attempts as f64
    }
}

struct GroupCounters {
    committed: AtomicU64,
    deadlocks: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicU64,
    latency_hist: Histogram,
}

/// Run all worker groups concurrently for `duration`; returns one
/// [`GroupResult`] per spec, in order.
pub fn run_for(db: &Arc<Database>, specs: &[WorkerSpec], duration: Duration) -> Vec<GroupResult> {
    let stop = Arc::new(AtomicBool::new(false));
    let counters: Vec<Arc<GroupCounters>> = specs
        .iter()
        .map(|_| {
            Arc::new(GroupCounters {
                committed: AtomicU64::new(0),
                deadlocks: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency_us: AtomicU64::new(0),
                latency_hist: Histogram::new(),
            })
        })
        .collect();

    let mut handles = Vec::new();
    for (gi, spec) in specs.iter().enumerate() {
        for w in 0..spec.threads {
            let db = Arc::clone(db);
            let stop = Arc::clone(&stop);
            let op = Arc::clone(&spec.op);
            let counters = Arc::clone(&counters[gi]);
            let isolation = spec.isolation;
            let seed = (gi as u64) << 32 | w as u64;
            handles.push(std::thread::spawn(move || {
                let mut rng = Rng::new(0x5EED ^ seed.wrapping_mul(0x9E37_79B9));
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let mut txn = db.begin(isolation);
                    let result =
                        op(&db, &mut txn, &mut rng, seq).and_then(|()| db.commit(&mut txn).map(|_| ()));
                    seq += 1;
                    match result {
                        Ok(()) => {
                            counters.committed.fetch_add(1, Ordering::Relaxed);
                            let us = t0.elapsed().as_micros() as u64;
                            counters.latency_us.fetch_add(us, Ordering::Relaxed);
                            counters.latency_hist.record(us);
                        }
                        Err(e) => {
                            if txn.is_active() {
                                let _ = db.rollback(&mut txn);
                            }
                            match e {
                                Error::DeadlockVictim { .. } => {
                                    counters.deadlocks.fetch_add(1, Ordering::Relaxed);
                                }
                                Error::LockTimeout { .. } => {
                                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    counters.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            }));
        }
    }

    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    specs
        .iter()
        .zip(counters)
        .map(|(spec, c)| GroupResult {
            name: spec.name.clone(),
            committed: c.committed.load(Ordering::Relaxed),
            deadlocks: c.deadlocks.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            latency_us_total: c.latency_us.load(Ordering::Relaxed),
            latency: c.latency_hist.snapshot(),
            elapsed_s: elapsed,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txview_common::row;
    use txview_common::schema::{Column, Schema};
    use txview_common::value::ValueType;

    #[test]
    fn driver_counts_commits() {
        let db = Database::new_in_memory(256);
        db.create_table(
            "t",
            Schema::new(vec![Column::new("id", ValueType::Int)], vec![0]).unwrap(),
        )
        .unwrap();
        let spec = WorkerSpec {
            name: "writers".into(),
            threads: 2,
            isolation: IsolationLevel::ReadCommitted,
            op: Arc::new(|db, txn, rng, seq| {
                let id = (rng.next_u64() % 1000) as i64 * 1_000_000 + seq as i64;
                db.insert(txn, "t", row![id])
            }),
        };
        let results = run_for(&db, &[spec], Duration::from_millis(200));
        assert_eq!(results.len(), 1);
        assert!(results[0].committed > 0);
        assert!(results[0].throughput() > 0.0);
        assert!(results[0].mean_latency_us() > 0.0);
        // The latency histogram mirrors the counters: same count, and its
        // percentile ladder is monotone.
        let h = &results[0].latency;
        assert_eq!(h.count(), results[0].committed);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn group_result_math() {
        let g = GroupResult {
            name: "g".into(),
            committed: 90,
            deadlocks: 5,
            timeouts: 5,
            errors: 0,
            latency_us_total: 9000,
            latency: HistSnapshot::default(),
            elapsed_s: 2.0,
        };
        assert_eq!(g.throughput(), 45.0);
        assert_eq!(g.mean_latency_us(), 100.0);
        assert_eq!(g.aborts(), 10);
        assert!((g.abort_rate() - 0.1).abs() < 1e-9);
    }
}
