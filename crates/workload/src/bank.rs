//! The bank workload: many accounts funnel into few `branch_balance` view
//! rows — the contention pattern the paper's escrow locking targets.
//!
//! * `accounts(id PK, branch, balance)` with `accounts / branches` rows per
//!   branch;
//! * indexed view `branch_balance = SELECT branch, COUNT_BIG(*),
//!   SUM(balance) FROM accounts GROUP BY branch`;
//! * **transfer** transactions move money between two random accounts
//!   (Zipf-skewed branch choice), so total money is invariant;
//! * **audit** readers scan the whole view and check conservation — an
//!   exact anomaly detector for the isolation-level experiment (E4).

use crate::driver::OpFn;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::rng::{Rng, Zipf};
use txview_common::{row, Result, Row, Value};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

/// Name of the bank's indexed view.
pub const VIEW: &str = "branch_balance";

/// Terminal view of the optional derived chain: a single-row global
/// rollup of [`VIEW`] (total count and total money).
pub const CHAIN_TOTAL: &str = "bank_total";

/// Names of the derived chain views a bank with `chain_depth` stacks on
/// [`VIEW`]: `chain_depth - 1` identity levels, then [`CHAIN_TOTAL`].
pub fn chain_view_names(chain_depth: usize) -> Vec<String> {
    (1..=chain_depth)
        .map(|d| {
            if d == chain_depth { CHAIN_TOTAL.to_string() } else { format!("balance_chain_{d}") }
        })
        .collect()
}

/// Bank workload parameters.
#[derive(Clone, Debug)]
pub struct BankConfig {
    /// Total number of accounts.
    pub accounts: i64,
    /// Number of branches (= view rows = contention points).
    pub branches: i64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// View maintenance protocol under test.
    pub mode: MaintenanceMode,
    /// Zipf skew of branch selection (0 = uniform).
    pub zipf_theta: f64,
    /// Buffer-pool pages.
    pub pool_pages: usize,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
    /// Commit through the leader-based group-commit pipeline.
    pub pipeline: bool,
    /// With `pipeline`, additionally release escrow locks at log-append
    /// time (early lock release with commit-dependency tracking).
    pub elr: bool,
    /// Per-sync log-device latency in microseconds (0 = off). Injected
    /// through the fault log store's seeded latency model, so the WAL
    /// behaves like a device with a real fsync cost and commit-path
    /// batching becomes measurable.
    pub sync_latency_us: u64,
    /// Depth of the derived chain stacked on [`VIEW`] (0 = none).
    /// Depth `d` adds `d - 1` identity levels plus the global
    /// [`CHAIN_TOTAL`] rollup, so every commit's view deltas cascade
    /// `d` levels before the WAL commit record is appended.
    pub chain_depth: usize,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 8192,
            branches: 8,
            initial_balance: 1000,
            mode: MaintenanceMode::Escrow,
            zipf_theta: 0.0,
            pool_pages: 4096,
            lock_timeout: Duration::from_secs(5),
            pipeline: false,
            elr: false,
            sync_latency_us: 0,
            chain_depth: 0,
        }
    }
}

/// A set-up bank database plus its config.
pub struct Bank {
    /// The database.
    pub db: Arc<Database>,
    /// The configuration it was built with.
    pub cfg: BankConfig,
    zipf: Zipf,
}

impl Bank {
    /// Build the schema, create the view, and load the accounts.
    pub fn setup(cfg: BankConfig) -> Result<Bank> {
        use txview_common::schema::{Column, Schema};
        use txview_common::value::ValueType;
        let db = if cfg.sync_latency_us > 0 {
            Database::new_in_memory_slow_sync(
                cfg.pool_pages,
                cfg.lock_timeout,
                cfg.sync_latency_us,
                cfg.sync_latency_us / 4,
                42,
            )
        } else {
            Database::new_in_memory_with(cfg.pool_pages, cfg.lock_timeout)
        };
        if cfg.pipeline {
            db.enable_commit_pipeline(cfg.elr);
        }
        let t = db.create_table(
            "accounts",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("branch", ValueType::Int),
                    Column::new("balance", ValueType::Int),
                ],
                vec![0],
            )?,
        )?;
        db.create_indexed_view(ViewSpec {
            name: VIEW.into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: cfg.mode,
            deferred: false,
            eager_group_delete: false,
        })?;
        // Stack the derived chain on the view: each level stores
        // [branch | COUNT | SUM(balance)] (identity re-aggregation), the
        // terminal level rolls everything into one global row.
        let mut parent = VIEW.to_string();
        for (i, name) in chain_view_names(cfg.chain_depth).into_iter().enumerate() {
            let group_by = if i + 1 == cfg.chain_depth { vec![] } else { vec![0] };
            db.create_derived_view(&name, &parent, group_by, vec![AggSpec::SumInt { col: 2 }], cfg.mode)?;
            parent = name;
        }
        // Load in batches.
        let mut i = 0i64;
        while i < cfg.accounts {
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            let end = (i + 1000).min(cfg.accounts);
            while i < end {
                db.insert(&mut txn, "accounts", row![i, i % cfg.branches, cfg.initial_balance])?;
                i += 1;
            }
            db.commit(&mut txn)?;
        }
        db.checkpoint()?;
        let zipf = Zipf::new(cfg.branches as u64, cfg.zipf_theta);
        Ok(Bank { db, cfg, zipf })
    }

    /// The invariant: total money in the system.
    pub fn total_money(&self) -> i64 {
        self.cfg.accounts * self.cfg.initial_balance
    }

    /// Pick an account: Zipf over branches, uniform within the branch.
    fn pick_account(cfg: &BankConfig, zipf: &Zipf, rng: &mut Rng) -> i64 {
        let branch = zipf.sample(rng) as i64;
        let per_branch = cfg.accounts / cfg.branches;
        let slot = rng.below(per_branch.max(1) as u64) as i64;
        // Account ids are laid out round-robin: id % branches == branch.
        (slot * cfg.branches + branch).min(cfg.accounts - 1)
    }

    /// Transfer operation: move a small amount between `spread` accounts
    /// (1 = same-account no-op avoided; 2 = classic two-account transfer,
    /// which collides on two view rows and creates deadlock potential
    /// under X-lock maintenance).
    pub fn transfer_op(&self, spread: usize) -> Arc<OpFn> {
        let cfg = self.cfg.clone();
        let zipf = self.zipf.clone();
        Arc::new(move |db, txn, rng, _seq| {
            let amount = rng.range_inclusive(1, 10);
            let mut ids = Vec::with_capacity(spread);
            while ids.len() < spread {
                let id = Self::pick_account(&cfg, &zipf, rng);
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            // Debit the first, credit the rest evenly (deliberately NOT
            // sorted: lock-order collisions are part of the experiment).
            let credit = amount / (spread as i64 - 1).max(1);
            db.update_with(txn, "accounts", &[Value::Int(ids[0])], |r| {
                add_balance(r, -credit * (spread as i64 - 1).max(1))
            })?;
            for &id in &ids[1..] {
                db.update_with(txn, "accounts", &[Value::Int(id)], |r| add_balance(r, credit))?;
            }
            Ok(())
        })
    }

    /// Deposit operation: a single-account balance adjustment — one base
    /// row, one view row. This is the minimal-contention writer the
    /// throughput sweeps use; it does not preserve total money, so the
    /// audit invariant is only combined with transfer workloads.
    pub fn deposit_op(&self) -> Arc<OpFn> {
        let cfg = self.cfg.clone();
        let zipf = self.zipf.clone();
        Arc::new(move |db, txn, rng, _seq| {
            let id = Self::pick_account(&cfg, &zipf, rng);
            let d = rng.range_inclusive(-5, 5);
            db.update_with(txn, "accounts", &[Value::Int(id)], |r| add_balance(r, d))
        })
    }

    /// Batched deposit: `k` account updates in ONE transaction. View-row
    /// locks are then held across the whole transaction — the contention
    /// pattern the paper targets (real transactions touch many rows).
    pub fn batch_deposit_op(&self, k: usize) -> Arc<OpFn> {
        let cfg = self.cfg.clone();
        let zipf = self.zipf.clone();
        Arc::new(move |db, txn, rng, _seq| {
            for _ in 0..k {
                let id = Self::pick_account(&cfg, &zipf, rng);
                let d = rng.range_inclusive(-5, 5);
                db.update_with(txn, "accounts", &[Value::Int(id)], |r| add_balance(r, d))?;
            }
            Ok(())
        })
    }

    /// Audit operation: scan the whole view, check money conservation.
    /// Increments `anomalies` when the sum does not match (expected 0 under
    /// Serializable and Snapshot; possible under ReadCommitted).
    pub fn audit_op(&self, anomalies: Arc<AtomicU64>) -> Arc<OpFn> {
        let total = self.total_money();
        Arc::new(move |db, txn, _rng, _seq| {
            let rows = db.view_scan(txn, VIEW, None, None)?;
            let mut sum = 0i64;
            for r in &rows {
                sum += r.get(2).as_int()?; // [branch, count, sum]
            }
            if sum != total {
                anomalies.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })
    }

    /// Chain audit: read the terminal [`CHAIN_TOTAL`] rollup and check
    /// money conservation there. Because commit-time flushing coalesces a
    /// transfer's debit and credit before they reach the global row, the
    /// rollup's SUM never transits an unbalanced state — even
    /// ReadCommitted audits of the terminal view are exact (unlike
    /// [`Bank::audit_op`], whose multi-row scan can catch [`VIEW`]
    /// mid-transfer under ReadCommitted).
    pub fn chain_audit_op(&self, anomalies: Arc<AtomicU64>) -> Arc<OpFn> {
        assert!(self.cfg.chain_depth > 0, "chain_audit_op needs a chained bank");
        let total = self.total_money();
        let accounts = self.cfg.accounts;
        Arc::new(move |db, txn, _rng, _seq| {
            let rows = db.view_scan(txn, CHAIN_TOTAL, None, None)?;
            // [group(0), COUNT_BIG, SUM(balance)]
            let ok = rows.len() == 1
                && rows[0].get(1).as_int()? == accounts
                && rows[0].get(2).as_int()? == total;
            if !ok {
                anomalies.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })
    }

    /// Verify the view against base (quiesced), and every chain level
    /// against both its immediate parent and a transitive recompute.
    pub fn verify(&self) -> Result<()> {
        self.db.verify_view(VIEW)?;
        for name in chain_view_names(self.cfg.chain_depth) {
            self.db.verify_view(&name)?;
            self.db.verify_view_from_parent(&name)?;
        }
        Ok(())
    }

    /// Total money as seen through the terminal chain view (quiesced).
    pub fn chain_total(&self) -> Result<i64> {
        let mut txn = self.db.begin(IsolationLevel::ReadCommitted);
        let rows = self.db.view_scan(&mut txn, CHAIN_TOTAL, None, None)?;
        let sum = rows.iter().map(|r| r.get(2).as_int().unwrap_or(0)).sum();
        self.db.commit(&mut txn)?;
        Ok(sum)
    }
}

fn add_balance(r: &Row, d: i64) -> Row {
    let mut out = r.clone();
    let bal = r.get(2).as_int().expect("balance is INT");
    out.set(2, Value::Int(bal + d));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_for, WorkerSpec};

    fn small() -> BankConfig {
        BankConfig { accounts: 256, branches: 4, ..Default::default() }
    }

    #[test]
    fn setup_loads_and_view_is_consistent() {
        let bank = Bank::setup(small()).unwrap();
        bank.verify().unwrap();
        let mut txn = bank.db.begin(IsolationLevel::ReadCommitted);
        let rows = bank.db.view_scan(&mut txn, VIEW, None, None).unwrap();
        assert_eq!(rows.len(), 4);
        let total: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        assert_eq!(total, bank.total_money());
        bank.db.commit(&mut txn).unwrap();
    }

    #[test]
    fn transfers_conserve_money_under_concurrency() {
        let bank = Bank::setup(small()).unwrap();
        let specs = [WorkerSpec {
            name: "transfer".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: bank.transfer_op(2),
        }];
        let res = run_for(&bank.db, &specs, Duration::from_millis(300));
        assert!(res[0].committed > 0);
        bank.verify().unwrap();
        let mut txn = bank.db.begin(IsolationLevel::ReadCommitted);
        let rows = bank.db.view_scan(&mut txn, VIEW, None, None).unwrap();
        let total: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        assert_eq!(total, bank.total_money());
        bank.db.commit(&mut txn).unwrap();
    }

    #[test]
    fn serializable_audit_sees_no_anomalies() {
        let bank = Bank::setup(small()).unwrap();
        let anomalies = Arc::new(AtomicU64::new(0));
        let specs = [
            WorkerSpec {
                name: "transfer".into(),
                threads: 2,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            },
            WorkerSpec {
                name: "audit".into(),
                threads: 1,
                isolation: IsolationLevel::Serializable,
                op: bank.audit_op(Arc::clone(&anomalies)),
            },
        ];
        let res = run_for(&bank.db, &specs, Duration::from_millis(400));
        assert!(res[1].committed > 0, "auditor made progress");
        assert_eq!(anomalies.load(Ordering::Relaxed), 0, "serializable audits are exact");
        bank.verify().unwrap();
    }

    #[test]
    fn snapshot_audit_sees_no_anomalies_without_blocking() {
        let bank = Bank::setup(small()).unwrap();
        let anomalies = Arc::new(AtomicU64::new(0));
        let specs = [
            WorkerSpec {
                name: "transfer".into(),
                threads: 2,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            },
            WorkerSpec {
                name: "audit".into(),
                threads: 1,
                isolation: IsolationLevel::Snapshot,
                op: bank.audit_op(Arc::clone(&anomalies)),
            },
        ];
        let res = run_for(&bank.db, &specs, Duration::from_millis(400));
        assert!(res[1].committed > 0);
        assert_eq!(anomalies.load(Ordering::Relaxed), 0, "snapshot audits are exact");
        bank.verify().unwrap();
    }

    #[test]
    fn chained_setup_is_consistent() {
        let bank = Bank::setup(BankConfig { chain_depth: 3, ..small() }).unwrap();
        bank.verify().unwrap();
        assert_eq!(bank.chain_total().unwrap(), bank.total_money());
    }

    #[test]
    fn transfers_conserve_money_through_the_chain() {
        for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
            let bank = Bank::setup(BankConfig { chain_depth: 2, mode, ..small() }).unwrap();
            let specs = [WorkerSpec {
                name: "transfer".into(),
                threads: 4,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            }];
            let res = run_for(&bank.db, &specs, Duration::from_millis(300));
            assert!(res[0].committed > 0);
            bank.verify().unwrap();
            assert_eq!(bank.chain_total().unwrap(), bank.total_money(), "{mode:?}");
        }
    }

    #[test]
    fn coalescing_nets_transfers_before_the_terminal_rollup() {
        // A transfer's debit and credit coalesce to a zero delta before the
        // global rollup row is touched, so even ReadCommitted audits of the
        // terminal view are exact while transfers are in flight.
        let bank = Bank::setup(BankConfig { chain_depth: 2, ..small() }).unwrap();
        let anomalies = Arc::new(AtomicU64::new(0));
        let specs = [
            WorkerSpec {
                name: "transfer".into(),
                threads: 2,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            },
            WorkerSpec {
                name: "chain-audit".into(),
                threads: 1,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.chain_audit_op(Arc::clone(&anomalies)),
            },
        ];
        let res = run_for(&bank.db, &specs, Duration::from_millis(400));
        assert!(res[0].committed > 0 && res[1].committed > 0);
        assert_eq!(anomalies.load(Ordering::Relaxed), 0, "terminal rollup audits are exact");
        bank.verify().unwrap();
    }

    #[test]
    fn chained_bank_survives_pipelined_elr_commits() {
        let bank = Bank::setup(BankConfig {
            chain_depth: 3,
            pipeline: true,
            elr: true,
            ..small()
        })
        .unwrap();
        let specs = [WorkerSpec {
            name: "transfer".into(),
            threads: 3,
            isolation: IsolationLevel::ReadCommitted,
            op: bank.transfer_op(2),
        }];
        let res = run_for(&bank.db, &specs, Duration::from_millis(300));
        assert!(res[0].committed > 0);
        bank.verify().unwrap();
        assert_eq!(bank.chain_total().unwrap(), bank.total_money());
    }

    #[test]
    fn zipf_skew_builds() {
        let bank = Bank::setup(BankConfig { zipf_theta: 1.2, ..small() }).unwrap();
        let mut rng = Rng::new(7);
        let mut seen0 = 0;
        for _ in 0..1000 {
            if Bank::pick_account(&bank.cfg, &bank.zipf, &mut rng) % bank.cfg.branches == 0 {
                seen0 += 1;
            }
        }
        assert!(seen0 > 400, "rank-0 branch dominates: {seen0}");
    }
}
