//! The group come/go (churn) workload — E7.
//!
//! `items(id, grp, val)` holds at most one row per group, so every delete
//! empties its group (COUNT_BIG → 0) and every insert re-creates it. This
//! hammers exactly the anomaly machinery: ghosted view rows, resurrection,
//! asynchronous cleanup — and, in the `eager_group_delete` ablation, the
//! E→X conversions that deadlock under concurrency.

use crate::driver::OpFn;
use std::sync::Arc;
use std::time::Duration;
use txview_common::{row, Error, Result, Value};
use txview_engine::{
    AggSpec, Database, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

/// Churn workload parameters.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Number of single-row groups being emptied/refilled.
    pub groups: i64,
    /// E7 ablation: eager in-transaction deletion of emptied group rows.
    pub eager_group_delete: bool,
    /// Maintenance protocol.
    pub mode: MaintenanceMode,
    /// Buffer-pool pages.
    pub pool_pages: usize,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            groups: 16,
            eager_group_delete: false,
            mode: MaintenanceMode::Escrow,
            pool_pages: 2048,
            lock_timeout: Duration::from_secs(5),
        }
    }
}

/// Name of the churn view.
pub const VIEW: &str = "group_totals";

/// A set-up churn database.
pub struct Churn {
    /// The database.
    pub db: Arc<Database>,
    /// Configuration.
    pub cfg: ChurnConfig,
}

impl Churn {
    /// Build schema + view; groups start *empty*.
    pub fn setup(cfg: ChurnConfig) -> Result<Churn> {
        use txview_common::schema::{Column, Schema};
        use txview_common::value::ValueType;
        let db = Database::new_in_memory_with(cfg.pool_pages, cfg.lock_timeout);
        let t = db.create_table(
            "items",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("grp", ValueType::Int),
                    Column::new("val", ValueType::Int),
                ],
                vec![0],
            )?,
        )?;
        db.create_indexed_view(ViewSpec {
            name: VIEW.into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: cfg.mode,
            deferred: false,
            eager_group_delete: cfg.eager_group_delete,
        })?;
        db.checkpoint()?;
        Ok(Churn { db, cfg })
    }

    /// Toggle operation: `batch` groups per TRANSACTION. For each chosen
    /// group, delete its designated row if present (emptying the group) or
    /// insert it (creating the group); losing a race flips the op once.
    /// Multi-group transactions hold their view-row locks to commit, which
    /// is what makes the eager-delete ablation deadlock (E→X conversions
    /// against concurrent escrow holders on other groups).
    pub fn toggle_op(&self, batch: usize) -> Arc<OpFn> {
        let groups = self.cfg.groups;
        Arc::new(move |db, txn, rng, _seq| {
            for _ in 0..batch {
                let g = rng.below(groups as u64) as i64;
                // Row id == group id: at most one row per group.
                let pk = [Value::Int(g)];
                match db.delete(txn, "items", &pk) {
                    Ok(()) => {}
                    Err(Error::NotFound(_)) => match db.insert(txn, "items", row![g, g, 7i64]) {
                        Ok(()) => {}
                        Err(Error::DuplicateKey(_)) => db.delete(txn, "items", &pk)?,
                        Err(e) => return Err(e),
                    },
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })
    }

    /// Verify the view (quiesced).
    pub fn verify(&self) -> Result<()> {
        self.db.verify_view(VIEW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_for, WorkerSpec};
    use txview_engine::IsolationLevel;

    #[test]
    fn ghost_mode_churn_is_consistent_and_cleanable() {
        let churn = Churn::setup(ChurnConfig::default()).unwrap();
        let specs = [WorkerSpec {
            name: "toggle".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: churn.toggle_op(2),
        }];
        let res = run_for(&churn.db, &specs, Duration::from_millis(400));
        assert!(res[0].committed > 0);
        churn.verify().unwrap();
        assert!(churn.db.ghost_backlog() > 0, "churn queues cleanup work");
        let report = churn.db.run_ghost_cleanup().unwrap();
        assert!(report.removed + report.skipped_live + report.skipped_locked > 0);
        churn.verify().unwrap();
    }

    #[test]
    fn eager_mode_is_correct_but_conflict_prone() {
        let churn = Churn::setup(ChurnConfig {
            eager_group_delete: true,
            groups: 2, // tiny: maximize E→X conversion collisions
            ..Default::default()
        })
        .unwrap();
        let specs = [WorkerSpec {
            name: "toggle".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: churn.toggle_op(2),
        }];
        let res = run_for(&churn.db, &specs, Duration::from_millis(400));
        assert!(res[0].committed > 0);
        churn.verify().unwrap();
    }
}
