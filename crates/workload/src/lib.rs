//! # txview-workload
//!
//! Workload generators and the multi-threaded measurement driver for the
//! experiment suite:
//!
//! * [`bank`] — the contention workload of E1/E2/E3/E4: accounts funnel
//!   into few hot `branch_balance` view rows; deposits, cross-branch
//!   transfers, auditing readers with an exact money-conservation invariant;
//! * [`sales`] — the star-schema workload of E6/E8: a sales fact table,
//!   a store dimension, N single-table views and an optional join view,
//!   with deferred-maintenance variants;
//! * [`churn`] — the group come/go workload of E7: single-row groups that
//!   are emptied and refilled continuously;
//! * [`driver`] — fixed-duration multi-threaded runner with per-group
//!   commit/abort/latency accounting;
//! * [`report`] — fixed-width table formatting for experiment output.

pub mod bank;
pub mod churn;
pub mod driver;
pub mod report;
pub mod sales;

pub use driver::{run_for, GroupResult, WorkerSpec};
pub use report::Table;
