//! Fixed-width table formatting for experiment output.

use std::fmt::Write as _;

/// A printable table: title, column headers, string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title, printed above the grid.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_grid() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(42.25), "42.2");
        assert_eq!(f(1.5), "1.500");
        assert_eq!(pct(0.125), "12.5%");
    }
}
