//! The sales star-schema workload (E6: deferred maintenance, E8: overhead
//! scaling with the number of views).
//!
//! * dimension `stores(pk, region)` — `n_stores` rows across 4 regions;
//! * fact `sales(id, store, product, amount)`;
//! * `n_views` single-table views `sales_by_product_<i>` grouping on
//!   `product` (identical shape: what E8 sweeps is *how many* views each
//!   DML statement must maintain);
//! * optionally one join view `revenue_by_region` (fact ⋈ dim);
//! * optionally all views deferred (E6).

use crate::driver::OpFn;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_common::{row, Result, Value};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};

/// Sales workload parameters.
#[derive(Clone, Debug)]
pub struct SalesConfig {
    /// Number of stores (dimension rows).
    pub n_stores: i64,
    /// Number of distinct products (group fan-in of the product views).
    pub n_products: i64,
    /// Number of identical single-table product views to maintain.
    pub n_views: usize,
    /// Also create the join view `revenue_by_region`.
    pub join_view: bool,
    /// Create every view deferred (bulk-refresh) instead of immediate.
    pub deferred: bool,
    /// Maintenance protocol for immediate views.
    pub mode: MaintenanceMode,
    /// Buffer-pool pages.
    pub pool_pages: usize,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            n_stores: 64,
            n_products: 256,
            n_views: 1,
            join_view: false,
            deferred: false,
            mode: MaintenanceMode::Escrow,
            pool_pages: 4096,
            lock_timeout: Duration::from_secs(5),
        }
    }
}

/// The four fixed regions stores are assigned to.
pub const REGIONS: [&str; 4] = ["north", "south", "east", "west"];

/// A set-up sales database.
pub struct Sales {
    /// The database.
    pub db: Arc<Database>,
    /// Configuration.
    pub cfg: SalesConfig,
    next_id: Arc<AtomicI64>,
}

impl Sales {
    /// Build schema + views.
    pub fn setup(cfg: SalesConfig) -> Result<Sales> {
        use txview_common::schema::{Column, Schema};
        use txview_common::value::ValueType;
        let db = Database::new_in_memory_with(cfg.pool_pages, cfg.lock_timeout);
        let dim = db.create_table(
            "stores",
            Schema::new(
                vec![
                    Column::new("pk", ValueType::Int),
                    Column::new("region", ValueType::Str),
                ],
                vec![0],
            )?,
        )?;
        let fact = db.create_table(
            "sales",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("store", ValueType::Int),
                    Column::new("product", ValueType::Int),
                    Column::new("amount", ValueType::Int),
                ],
                vec![0],
            )?,
        )?;
        // Load the dimension before any join view freezes it.
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for s in 0..cfg.n_stores {
            let region = REGIONS[(s % 4) as usize];
            db.insert(&mut txn, "stores", row![s, region])?;
        }
        db.commit(&mut txn)?;

        for i in 0..cfg.n_views {
            db.create_indexed_view(ViewSpec {
                name: format!("sales_by_product_{i}"),
                source: ViewSource::Single { table: fact, group_by: vec![2] },
                aggs: vec![AggSpec::SumInt { col: 3 }],
                filter: Predicate::True,
                maintenance: cfg.mode,
                deferred: cfg.deferred,
                eager_group_delete: false,
            })?;
        }
        if cfg.join_view {
            db.create_indexed_view(ViewSpec {
                name: "revenue_by_region".into(),
                source: ViewSource::Join {
                    fact,
                    fact_fk_col: 1,
                    dim,
                    dim_group_by: vec![1],
                },
                aggs: vec![AggSpec::SumInt { col: 3 }],
                filter: Predicate::True,
                maintenance: cfg.mode,
                deferred: cfg.deferred,
                eager_group_delete: false,
            })?;
        }
        db.checkpoint()?;
        Ok(Sales { db, cfg, next_id: Arc::new(AtomicI64::new(0)) })
    }

    /// Insert-one-sale operation (ids globally unique across workers).
    pub fn insert_sale_op(&self) -> Arc<OpFn> {
        let cfg = self.cfg.clone();
        let next = Arc::clone(&self.next_id);
        Arc::new(move |db, txn, rng, _seq| {
            let id = next.fetch_add(1, Ordering::Relaxed);
            let store = rng.below(cfg.n_stores as u64) as i64;
            let product = rng.below(cfg.n_products as u64) as i64;
            let amount = rng.range_inclusive(1, 100);
            db.insert(txn, "sales", row![id, store, product, amount])
        })
    }

    /// Aggregate-query operation: read one product's totals from view 0
    /// (immediate views) — used to measure reader cost vs deferred refresh.
    pub fn product_query_op(&self) -> Arc<OpFn> {
        let cfg = self.cfg.clone();
        Arc::new(move |db, txn, rng, _seq| {
            let product = rng.below(cfg.n_products as u64) as i64;
            let _ = db.view_aggregates(txn, "sales_by_product_0", &[Value::Int(product)])?;
            Ok(())
        })
    }

    /// Verify every view.
    pub fn verify(&self) -> Result<()> {
        for i in 0..self.cfg.n_views {
            self.db.verify_view(&format!("sales_by_product_{i}"))?;
        }
        if self.cfg.join_view {
            self.db.verify_view("revenue_by_region")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_for, WorkerSpec};

    #[test]
    fn multi_view_maintenance_consistent_under_load() {
        let sales = Sales::setup(SalesConfig {
            n_views: 3,
            join_view: true,
            n_products: 16,
            n_stores: 8,
            ..Default::default()
        })
        .unwrap();
        let specs = [WorkerSpec {
            name: "insert".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: sales.insert_sale_op(),
        }];
        let res = run_for(&sales.db, &specs, Duration::from_millis(300));
        assert!(res[0].committed > 0);
        sales.verify().unwrap();
    }

    #[test]
    fn deferred_views_accumulate_staleness() {
        let sales = Sales::setup(SalesConfig {
            n_views: 1,
            deferred: true,
            ..Default::default()
        })
        .unwrap();
        let mut txn = sales.db.begin(IsolationLevel::ReadCommitted);
        for i in 0..20 {
            sales
                .db
                .insert(&mut txn, "sales", row![i as i64, 0i64, 0i64, 10i64])
                .unwrap();
        }
        sales.db.commit(&mut txn).unwrap();
        assert_eq!(sales.db.deferred_staleness("sales_by_product_0").unwrap(), 20);
        sales.db.refresh_deferred_view("sales_by_product_0").unwrap();
        sales.verify().unwrap();
    }
}
