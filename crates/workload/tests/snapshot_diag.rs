//! Diagnostic for snapshot-consistency: run transfers + snapshot audits and
//! report the distribution of anomaly magnitudes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use txview_engine::IsolationLevel;
use txview_workload::bank::{Bank, BankConfig, VIEW};

#[test]
fn snapshot_sum_is_always_conserved() {
    let bank = Bank::setup(BankConfig::default()).unwrap();
    let n_accounts = bank.cfg.accounts;
    let total = bank.total_money();
    let stop = Arc::new(AtomicBool::new(false));
    let anomalies: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for t in 0..8u64 {
        let db = Arc::clone(&bank.db);
        let stop = Arc::clone(&stop);
        let op = bank.transfer_op(2);
        handles.push(std::thread::spawn(move || {
            let mut rng = txview_common::rng::Rng::new(t + 1);
            let mut seq = 0;
            while !stop.load(Ordering::Relaxed) {
                let mut txn = db.begin(IsolationLevel::ReadCommitted);
                let r = op(&db, &mut txn, &mut rng, seq).and_then(|()| db.commit(&mut txn).map(|_| ()));
                if r.is_err() && txn.is_active() {
                    let _ = db.rollback(&mut txn);
                }
                seq += 1;
            }
        }));
    }
    for _ in 0..2 {
        let db = Arc::clone(&bank.db);
        let stop = Arc::clone(&stop);
        let anomalies = Arc::clone(&anomalies);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut txn = db.begin(IsolationLevel::Snapshot);
                let rows = db.view_scan(&mut txn, VIEW, None, None).unwrap();
                let sum: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
                let count: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
                if sum != total || count != n_accounts {
                    anomalies.lock().unwrap().push(sum - total);
                }
                let _ = db.commit(&mut txn);
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Ground truth: after quiescing, a fresh snapshot must agree exactly
    // with the physical (committed) view contents. A divergence here means
    // a commit published wrong/missing deltas (permanent corruption); a
    // divergence only during the run means a transient read race.
    {
        let db = &bank.db;
        let physical = db.dump_view(VIEW).unwrap();
        let mut snap = db.begin(IsolationLevel::Snapshot);
        let reconstructed = db.view_scan(&mut snap, VIEW, None, None).unwrap();
        db.commit(&mut snap).unwrap();
        assert_eq!(physical.len(), reconstructed.len(), "row cardinality");
        for (p, r) in physical.iter().zip(&reconstructed) {
            assert_eq!(p, r, "final chain reconstruction == physical");
        }
    }
    let a = anomalies.lock().unwrap();
    let mut histogram = std::collections::HashMap::new();
    for d in a.iter() {
        *histogram.entry(*d).or_insert(0u32) += 1;
    }
    assert!(
        a.is_empty(),
        "{} anomalies, magnitude histogram: {histogram:?}",
        a.len()
    );
}
