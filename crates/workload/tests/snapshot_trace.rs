//! Forensic trace for the residual snapshot tear: catch one anomalous scan
//! and dump the snapshot LSN plus each branch's version chain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use txview_common::Value;
use txview_engine::IsolationLevel;
use txview_workload::bank::{Bank, BankConfig, VIEW};

#[test]
fn trace_snapshot_tear() {
    let bank = Bank::setup(BankConfig::default()).unwrap();
    let branches = bank.cfg.branches;
    let total = bank.total_money();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let db = Arc::clone(&bank.db);
        let stop = Arc::clone(&stop);
        let op = bank.transfer_op(2);
        handles.push(std::thread::spawn(move || {
            let mut rng = txview_common::rng::Rng::new(t + 1);
            let mut seq = 0;
            while !stop.load(Ordering::Relaxed) {
                let mut txn = db.begin(IsolationLevel::ReadCommitted);
                let r = op(&db, &mut txn, &mut rng, seq)
                    .and_then(|()| db.commit(&mut txn).map(|_| ()));
                if let Err(e) = r {
                    eprintln!("writer error: {e} (txn active: {})", txn.is_active());
                    if txn.is_active() {
                        let _ = db.rollback(&mut txn);
                    }
                }
                seq += 1;
            }
        }));
    }

    let db = Arc::clone(&bank.db);
    let mut tear: Option<String> = None;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        let mut txn = db.begin(IsolationLevel::Snapshot);
        let s = txn.snapshot_lsn;
        let rows = db.view_scan(&mut txn, VIEW, None, None).unwrap();
        let sum: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        if sum != total {
            // Freeze the world, then re-read at the SAME snapshot: if the
            // re-read differs from what we saw, the original read raced;
            // if it matches, the chain content itself is wrong for s.
            stop.store(true, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(300));
            let rows2 = db.view_scan(&mut txn, VIEW, None, None).unwrap();
            let sum2: i64 = rows2.iter().map(|r| r.get(2).as_int().unwrap()).sum();
            let mut msg = format!(
                "TEAR: s={} sum={} total={} | re-read sum={} ({})\n",
                s.0,
                sum,
                total,
                sum2,
                if sum2 == total { "TRANSIENT READ RACE" } else { "WRONG CHAIN CONTENT" }
            );
            for (a, b) in rows.iter().zip(&rows2) {
                if a != b {
                    msg.push_str(&format!("row changed between reads: {a:?} -> {b:?}\n"));
                }
            }
            // Find the smallest s' >= s at which the sum becomes consistent
            // again, then show each branch's deltas around that boundary.
            let mut s_fix = None;
            for ds in 1..5000u64 {
                txn.snapshot_lsn = txview_common::Lsn(s.0 + ds);
                let rows3 = db.view_scan(&mut txn, VIEW, None, None).unwrap();
                let sum3: i64 = rows3.iter().map(|r| r.get(2).as_int().unwrap()).sum();
                if sum3 == total {
                    s_fix = Some(s.0 + ds);
                    break;
                }
            }
            msg.push_str(&format!("first consistent s' = {s_fix:?}\n"));
            let physical: i64 = db
                .dump_view(VIEW)
                .unwrap()
                .iter()
                .map(|r| r.get(2).as_int().unwrap())
                .sum();
            msg.push_str(&format!("physical sum = {physical}\n"));
            // Cross-check each branch's chain against the WAL: group the
            // logged escrow forward-pairs by owning txn, attribute them to
            // the txn's commit LSN, and diff with the published chain.
            use std::collections::HashMap as Map;
            use txview_wal::record::{RecordBody, UndoOp, ValueDelta};
            db.log().flush_all().unwrap();
            let records = db.log().read_durable_from(0).unwrap();
            // txn -> commit lsn
            let mut commit_of: Map<u64, u64> = Map::new();
            for (_, r) in &records {
                if matches!(r.body, RecordBody::Commit) {
                    commit_of.insert(r.txn.0, r.lsn.0);
                }
            }
            for b in 0..branches {
                let key = txview_common::Key::from_values(&[Value::Int(b)]);
                // logged sum-delta per commit lsn (escrow Update records only)
                let mut logged: Map<u64, i64> = Map::new();
                for (_, r) in &records {
                    if let RecordBody::Update { undo: UndoOp::Escrow { key: k, deltas, .. }, .. } = &r.body {
                        if k == key.as_bytes() {
                            if let Some(&cl) = commit_of.get(&r.txn.0) {
                                for (pos, d) in deltas {
                                    if *pos == 1 {
                                        if let ValueDelta::Int(x) = d {
                                            *logged.entry(cl).or_insert(0) += x;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let mut published: Map<u64, i64> = Map::new();
                for (l, full, p) in db.debug_chain(VIEW, &[Value::Int(b)]).unwrap() {
                    if full { continue; }
                    if let Some(pairs) = p {
                        for (pos, d) in pairs {
                            if pos == 1 {
                                if let ValueDelta::Int(x) = d {
                                    *published.entry(l).or_insert(0) += x;
                                }
                            }
                        }
                    }
                }
                for (l, v) in &published {
                    let lv = logged.get(l).copied().unwrap_or(0);
                    if lv != *v {
                        msg.push_str(&format!(
                            "branch {b}: lsn {l}: published {v} vs logged {lv}\n"
                        ));
                    }
                }
                // Entries at or below the base LSN were folded into the
                // base; anything newer MUST appear as a published delta.
                let base_lsn = db
                    .debug_chain(VIEW, &[Value::Int(b)])
                    .unwrap()
                    .iter()
                    .filter(|(_, full, _)| *full)
                    .map(|(l, _, _)| *l)
                    .max()
                    .unwrap_or(0);
                for (l, v) in &logged {
                    if *l > base_lsn && !published.contains_key(l) && *v != 0 {
                        msg.push_str(&format!(
                            "branch {b}: lsn {l}: logged {v} MISSING from chain (base_lsn {base_lsn})\n"
                        ));
                    }
                }
            }
            if let Some(sf) = s_fix {
                for b in 0..branches {
                    let chain = db.debug_chain(VIEW, &[Value::Int(b)]).unwrap();
                    for (l, full, p) in &chain {
                        if *l >= s.0.saturating_sub(60) && *l <= sf + 60 {
                            msg.push_str(&format!("  branch {b}: lsn {l} full={full} {p:?}\n"));
                        }
                    }
                }
            }
            for b in 0..branches {
                let chain = db.debug_chain(VIEW, &[Value::Int(b)]).unwrap();
                let tail: Vec<String> = chain
                    .iter()
                    .rev()
                    .take(6)
                    .map(|(l, full, p)| format!("({l},{},{:?})", if *full { "F" } else { "D" }, p))
                    .collect();
                msg.push_str(&format!("branch {b}: chain tail {tail:?}\n"));
                if let Some(r) = rows.iter().find(|r| r.get(0).as_int().unwrap() == b) {
                    msg.push_str(&format!("branch {b}: read row {r:?}\n"));
                }
            }
            tear = Some(msg);
            let _ = db.commit(&mut txn);
            break;
        }
        db.commit(&mut txn).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    if let Some(msg) = tear {
        panic!("{msg}");
    }
}
