//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the subset of the proptest 1.x API the test suite uses:
//! the [`Strategy`] trait with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`collection::vec`], [`sample::select`], [`Just`], [`any`],
//! weighted [`prop_oneof!`], and the [`proptest!`] test macro.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the test name and case
//!   number; cases are derived deterministically from the test's module
//!   path, so a failure reproduces by rerunning the same test binary.
//! * **Deterministic by default.** Case N of test T always sees the same
//!   inputs, run to run and machine to machine (no RNG from the OS).
//! * `prop_assert!`/`prop_assert_eq!` are plain assertions.

use std::ops::Range;

// ---- deterministic RNG ---------------------------------------------------

pub mod test_runner {
    //! The tiny deterministic RNG driving every strategy.

    /// xoshiro256++ seeded via SplitMix64 — the same construction the
    //  workspace's `txview-common` uses, duplicated here so the shim stays
    //  dependency-free (a dev-dependency cycle would otherwise form).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from a single `u64`.
        pub fn new(seed: u64) -> TestRng {
            let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng { s }
        }

        /// RNG for case `case` of the test identified by `name`
        /// (module path + function name): FNV-1a of the name, mixed with
        /// the case index.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)` (Lemire rejection, unbiased).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                let lo = m as u64;
                if lo >= n || lo >= (u64::MAX - n + 1) % n.max(1) {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

use test_runner::TestRng;

// ---- config --------------------------------------------------------------

/// Per-test configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

// ---- the Strategy trait --------------------------------------------------

/// A generator of test values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- integer ranges ------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty)*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8 u16 u32 usize i8 i16 i32 i64 isize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

// ---- any / Arbitrary -----------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty)*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over all values of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- weighted union (prop_oneof!) ----------------------------------------

/// Weighted choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---- collection ----------------------------------------------------------

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with lengths in `len` (half-open, like proptest's).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---- sample --------------------------------------------------------------

pub mod sample {
    //! Sampling strategies (subset: `select`).

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set.
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy choosing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

// ---- macros --------------------------------------------------------------

/// Weighted choice macro: `prop_oneof![3 => strat_a, 1 => strat_b]`
/// (unweighted arms default to weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a [`proptest!`] body (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-defining macro. Each contained `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest shim: test {} failed on deterministic case {} of {}",
                        __name, __case, cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

// ---- prelude -------------------------------------------------------------

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` usage.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! `prop::...` paths (subset: `sample`, `collection`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..1000 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0usize..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let s = (0i64..1000, 0u16..999).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::test_runner::TestRng::for_case("x", 7);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 7);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::new(3);
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "weight-9 arm hit only {hits}/1000");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u8..255, 2..5);
        let mut rng = crate::test_runner::TestRng::new(5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_runs(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
