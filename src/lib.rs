//! # txview
//!
//! A from-scratch Rust reproduction of **Graefe & Zwilling, "Transaction
//! support for indexed views" (SIGMOD 2004)**: indexed (materialized)
//! aggregate views maintained *immediately inside user transactions*, made
//! scalable and recoverable by
//!
//! * **escrow (increment) locking** on aggregate view rows,
//! * **logical logging and logical undo** of commutative deltas (ARIES),
//! * **ghost records + system transactions** for the group come/go anomaly,
//! * **key-range locking** for serializable readers, and
//! * a **delta-chain multiversion store** for snapshot readers.
//!
//! This facade crate re-exports the workspace's public surface. Start at
//! [`Database`]:
//!
//! ```
//! use txview_repro::prelude::*;
//! use txview_repro::row;
//!
//! let db = Database::new_in_memory(256);
//! let t = db
//!     .create_table(
//!         "accounts",
//!         Schema::new(
//!             vec![
//!                 Column::new("id", ValueType::Int),
//!                 Column::new("branch", ValueType::Int),
//!                 Column::new("balance", ValueType::Int),
//!             ],
//!             vec![0],
//!         )
//!         .unwrap(),
//!     )
//!     .unwrap();
//! db.create_indexed_view(ViewSpec {
//!     name: "branch_balance".into(),
//!     source: ViewSource::Single { table: t, group_by: vec![1] },
//!     aggs: vec![AggSpec::SumInt { col: 2 }],
//!     filter: Predicate::True,
//!     maintenance: MaintenanceMode::Escrow,
//!     deferred: false,
//!     eager_group_delete: false,
//! })
//! .unwrap();
//!
//! let mut txn = db.begin(IsolationLevel::ReadCommitted);
//! db.insert(&mut txn, "accounts", row![1i64, 0i64, 100i64]).unwrap();
//! db.commit(&mut txn).unwrap();
//! db.verify_view("branch_balance").unwrap();
//! ```

pub use txview_btree as btree;
pub use txview_common as common;
pub use txview_engine as engine;
pub use txview_lock as lock;
pub use txview_storage as storage;
pub use txview_txn as txn;
pub use txview_view as view;
pub use txview_wal as wal;
pub use txview_workload as workload;

pub use txview_common::row;

/// Everything a typical user needs.
pub mod prelude {
    pub use txview_common::schema::{Column, Schema};
    pub use txview_common::value::ValueType;
    pub use txview_common::{Error, Result, Row, Value};
    pub use txview_engine::{
        AggSpec, CmpOp, Database, IsolationLevel, MaintenanceMode, Predicate, Transaction,
        ViewSource, ViewSpec,
    };
}
