//! End-to-end observability: the metrics snapshot reflects what the
//! engine actually did — lock-wait histograms fill under contention and
//! stay empty without it, phase timers count every commit, and the
//! deferred-staleness gauge counts view-row deltas (not DML statements).

use std::sync::Arc;
use std::time::Duration;
use txview_engine::{
    AggSpec, CmpOp, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};
use txview_common::row;
use txview_common::schema::{Column, Schema};
use txview_common::value::{Value, ValueType};
use txview_workload::bank::{Bank, BankConfig};
use txview_workload::driver::{run_for, WorkerSpec};

fn hist_count(snap: &txview_common::obs::Snapshot, name: &str) -> u64 {
    snap.hist_value(name).map(|h| h.count()).unwrap_or(0)
}

#[test]
fn single_threaded_run_records_no_lock_waits() {
    let bank = Bank::setup(BankConfig {
        mode: MaintenanceMode::XLock,
        branches: 1,
        ..Default::default()
    })
    .unwrap();
    let db = &bank.db;
    for i in 0..20i64 {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.update_with(&mut txn, "accounts", &[Value::Int(i)], |r| {
            let mut out = r.clone();
            out.set(2, Value::Int(r.get(2).as_int().unwrap() + 1));
            out
        })
        .unwrap();
        db.commit(&mut txn).unwrap();
    }
    let snap = db.metrics_snapshot();
    snap.validate().unwrap();
    assert!(snap.counter_value("lock.acquired").unwrap() > 0);
    // Nothing to wait for: every wait histogram stays empty.
    for h in ["lock.wait_us.e", "lock.wait_us.x", "lock.wait_us.other"] {
        assert_eq!(hist_count(&snap, h), 0, "{h} populated without contention");
    }
    assert_eq!(snap.counter_value("lock.deadlock_victims"), Some(0));
    // Phase timers cover every commit.
    assert_eq!(hist_count(&snap, "txn.phase.commit_us"), snap.counter_value("txn.commits").unwrap());
}

#[test]
fn contended_run_populates_wait_histograms_and_phase_timers() {
    // One hot view row + X-lock maintenance: every transaction serializes
    // on the same view-row X lock, so 4 threads must queue.
    let bank = Bank::setup(BankConfig {
        mode: MaintenanceMode::XLock,
        branches: 1,
        ..Default::default()
    })
    .unwrap();
    let specs = [WorkerSpec {
        name: "deposit".into(),
        threads: 4,
        isolation: IsolationLevel::ReadCommitted,
        op: bank.batch_deposit_op(4),
    }];
    let res = run_for(&bank.db, &specs, Duration::from_millis(250));
    assert!(res[0].committed > 0);
    bank.verify().unwrap();

    let snap = bank.db.metrics_snapshot();
    snap.validate().unwrap();
    assert!(snap.counter_value("lock.waited").unwrap() > 0, "no lock ever waited:\n{}", snap.report());
    assert!(
        hist_count(&snap, "lock.wait_us.x") > 0,
        "X-lock wait histogram empty under contention:\n{}",
        snap.report()
    );
    assert!(hist_count(&snap, "lock.hold_us") > 0);
    // Per-phase commit accounting matches the commit counter, and the
    // maintain phase did real work.
    let commits = snap.counter_value("txn.commits").unwrap();
    assert!(commits >= res[0].committed, "driver saw more commits than the engine");
    assert_eq!(hist_count(&snap, "txn.phase.commit_us"), commits);
    assert_eq!(hist_count(&snap, "txn.phase.maintain_us"), commits);
    assert!(snap.hist_value("txn.phase.maintain_us").unwrap().sum > 0);
    // WAL + pool layers saw traffic too.
    assert!(snap.counter_value("wal.appended_records").unwrap() > 0);
    assert!(hist_count(&snap, "wal.sync_us") > 0);
    assert!(snap.counter_value("pool.hits").unwrap() > 0);
    // The human report renders every section.
    let report = snap.report();
    for section in ["lock.", "wal.", "pool.", "txn.", "engine."] {
        assert!(report.contains(section), "report missing {section} section");
    }
}

#[test]
fn escrow_contention_grants_do_not_serialize() {
    // Same hot row under escrow: E locks are compatible, so concurrent
    // deposits mostly proceed without queueing on the view row.
    let bank = Bank::setup(BankConfig {
        mode: MaintenanceMode::Escrow,
        branches: 1,
        ..Default::default()
    })
    .unwrap();
    let specs = [WorkerSpec {
        name: "deposit".into(),
        threads: 4,
        isolation: IsolationLevel::ReadCommitted,
        op: bank.batch_deposit_op(4),
    }];
    let res = run_for(&bank.db, &specs, Duration::from_millis(250));
    assert!(res[0].committed > 0);
    bank.verify().unwrap();
    let snap = bank.db.metrics_snapshot();
    snap.validate().unwrap();
    assert!(
        snap.counter_value("lock.escrow_grants").unwrap() > 0,
        "escrow mode never granted an E lock:\n{}",
        snap.report()
    );
    assert!(snap.counter_value("engine.escrow_applies").unwrap() > 0);
}

/// Satellite regression at the integration level: `deferred_pending`
/// counts unapplied view-row *deltas* — a filtered-out row adds 0, a plain
/// insert 1, a group-moving update 2.
#[test]
fn deferred_staleness_counts_deltas_not_statements() {
    let db = Database::new_in_memory(256);
    let t = db
        .create_table(
            "sales",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("product", ValueType::Int),
                    Column::new("amount", ValueType::Int),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    db.create_indexed_view(ViewSpec {
        name: "big_sales".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::Cmp { col: 2, op: CmpOp::Gt, value: Value::Int(100) },
        maintenance: MaintenanceMode::Escrow,
        deferred: true,
        eager_group_delete: false,
    })
    .unwrap();
    let db: &Arc<Database> = &db;
    let staleness = || db.deferred_staleness("big_sales").unwrap();

    // Filtered-out row: no view delta, staleness unchanged.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "sales", row![1i64, 1i64, 50i64]).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(staleness(), 0, "filtered insert must not count");

    // Qualifying insert: one delta.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "sales", row![2i64, 1i64, 500i64]).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(staleness(), 1, "plain insert counts once");

    // Group-moving update: retract from product 1, apply to product 2.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.update_with(&mut txn, "sales", &[Value::Int(2)], |r| {
        let mut out = r.clone();
        out.set(1, Value::Int(2));
        out
    })
    .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(staleness(), 3, "group-moving update counts twice");

    // The gauge in the snapshot mirrors the per-view counter.
    assert_eq!(db.metrics_snapshot().gauge_value("engine.deferred_pending"), Some(3));

    // Refresh drains exactly what it observed.
    db.refresh_deferred_view("big_sales").unwrap();
    assert_eq!(staleness(), 0);
    db.verify_view("big_sales").unwrap();
}
