//! Crash matrix: sweep a hard crash over every Nth durable operation of a
//! bank + churn workload, in both maintenance modes, and assert the full
//! recovery oracle at every point (views equal recomputation, acked
//! commits survive, balances replay from the ledger, redo idempotent,
//! ghosts cleanable).

use txview_engine::torture::{run_episode, run_sweep, TortureConfig};
use txview_engine::MaintenanceMode;
use txview_storage::fault::FaultSchedule;

fn cfg(mode: MaintenanceMode) -> TortureConfig {
    TortureConfig { mode, txns: 12, seed: 7, ..Default::default() }
}

#[test]
fn escrow_mode_survives_every_crash_point() {
    let report = run_sweep(&cfg(MaintenanceMode::Escrow), 48).unwrap();
    assert!(report.horizon >= 40, "horizon {}", report.horizon);
    assert!(report.episodes >= 40, "episodes {}", report.episodes);
    assert_eq!(
        report.crash_events.len(),
        report.episodes,
        "every episode crashed at a distinct point"
    );
    assert!(report.violations.is_empty(), "oracle violations: {:#?}", report.violations);
    assert!(report.losers_undone > 0, "some crash points must catch durable losers");
}

#[test]
fn xlock_mode_survives_every_crash_point() {
    let report = run_sweep(&cfg(MaintenanceMode::XLock), 48).unwrap();
    assert!(report.episodes >= 40, "episodes {}", report.episodes);
    assert!(report.violations.is_empty(), "oracle violations: {:#?}", report.violations);
    assert!(report.losers_undone > 0);
}

#[test]
fn crash_points_inside_the_steal_window_are_covered() {
    // The probes tick the clock between "WAL flushed" and "data page
    // written" (buffer) and between append and sync (wal), so a stride-1
    // prefix sweep necessarily lands crashes on those seams too.
    for offset in 0..12 {
        let ep = run_episode(&cfg(MaintenanceMode::Escrow), &FaultSchedule::crash_at(offset))
            .unwrap();
        assert!(
            ep.violations.is_empty(),
            "crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "crash at offset {offset} never fired");
    }
}

#[test]
fn sweep_is_reproducible_for_a_fixed_seed() {
    let a = run_sweep(&cfg(MaintenanceMode::Escrow), 10).unwrap();
    let b = run_sweep(&cfg(MaintenanceMode::Escrow), 10).unwrap();
    assert_eq!(a.horizon, b.horizon);
    assert_eq!(a.crash_events, b.crash_events);
    assert_eq!(a.acked_commits, b.acked_commits);
    assert_eq!(a.losers_undone, b.losers_undone);
    assert_eq!(a.violations.len(), b.violations.len());
}
