//! Crash matrix: sweep a hard crash over every Nth durable operation of a
//! bank + churn workload, in both maintenance modes, and assert the full
//! recovery oracle at every point (views equal recomputation, acked
//! commits survive, balances replay from the ledger, redo idempotent,
//! ghosts cleanable).

use std::sync::Arc;
use std::time::Duration;
use txview_engine::torture::{run_episode, run_sweep, TortureConfig};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};
use txview_storage::fault::{FaultClock, FaultDisk, FaultPoint, FaultSchedule};
use txview_common::row;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_wal::FaultLogStore;

fn cfg(mode: MaintenanceMode) -> TortureConfig {
    TortureConfig { mode, txns: 12, seed: 7, ..Default::default() }
}

#[test]
fn escrow_mode_survives_every_crash_point() {
    let report = run_sweep(&cfg(MaintenanceMode::Escrow), 48).unwrap();
    assert!(report.horizon >= 40, "horizon {}", report.horizon);
    assert!(report.episodes >= 40, "episodes {}", report.episodes);
    assert_eq!(
        report.crash_events.len(),
        report.episodes,
        "every episode crashed at a distinct point"
    );
    assert!(report.violations.is_empty(), "oracle violations: {:#?}", report.violations);
    assert!(report.losers_undone > 0, "some crash points must catch durable losers");
}

#[test]
fn xlock_mode_survives_every_crash_point() {
    let report = run_sweep(&cfg(MaintenanceMode::XLock), 48).unwrap();
    assert!(report.episodes >= 40, "episodes {}", report.episodes);
    assert!(report.violations.is_empty(), "oracle violations: {:#?}", report.violations);
    assert!(report.losers_undone > 0);
}

#[test]
fn crash_points_inside_the_steal_window_are_covered() {
    // The probes tick the clock between "WAL flushed" and "data page
    // written" (buffer) and between append and sync (wal), so a stride-1
    // prefix sweep necessarily lands crashes on those seams too.
    for offset in 0..12 {
        let ep = run_episode(&cfg(MaintenanceMode::Escrow), &FaultSchedule::crash_at(offset))
            .unwrap();
        assert!(
            ep.violations.is_empty(),
            "crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "crash at offset {offset} never fired");
    }
}

// ---- deferred-refresh crash window -----------------------------------
//
// `refresh_deferred_view` deletes every stored view row and rebuilds from
// base in ONE logged user transaction. A crash anywhere inside that window
// must roll the whole refresh back: after recovery the view is either the
// complete pre-refresh contents or the complete post-refresh contents —
// never empty, never a partial mix. (The old code committed the delete in
// a separate system transaction first, so a crash between the two left an
// empty-yet-"fresh" view.)

struct DeferredParts {
    clock: Arc<FaultClock>,
    disk: FaultDisk,
    store: FaultLogStore,
}

const DEFERRED_VIEW: &str = "sales_by_product";

/// Fault-injected db with a populated-but-stale deferred view: batch A is
/// refreshed into the view, batch B is pending. Checkpointed so every
/// episode starts from the same durable image.
fn build_deferred(seed_rows: i64) -> (Arc<Database>, DeferredParts) {
    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));
    let db = Database::with_parts(
        Arc::new(disk.clone()),
        Box::new(store.clone()),
        256,
        Duration::from_secs(2),
    )
    .unwrap();
    let c = Arc::clone(&clock);
    db.pool().set_crash_probe(Arc::new(move |p| {
        c.tick(FaultPoint::Probe(p));
    }));
    let c = Arc::clone(&clock);
    db.log().set_crash_probe(Arc::new(move |p| {
        c.tick(FaultPoint::Probe(p));
    }));

    let sales = db
        .create_table(
            "sales",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("product", ValueType::Int),
                    Column::new("amount", ValueType::Int),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    db.create_indexed_view(ViewSpec {
        name: DEFERRED_VIEW.into(),
        source: ViewSource::Single { table: sales, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: true,
        eager_group_delete: false,
    })
    .unwrap();

    // Batch A → refresh: the view now holds real pre-refresh contents.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..seed_rows {
        db.insert(&mut txn, "sales", row![i, i % 4, 10i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.refresh_deferred_view(DEFERRED_VIEW).unwrap();
    // Batch B: new products, so the refreshed view differs from the stale
    // one in both group count and sums.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..seed_rows {
        db.insert(&mut txn, "sales", row![seed_rows + i, 4 + i % 3, 5i64]).unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.checkpoint().unwrap();
    (db, DeferredParts { clock, disk, store })
}

/// One crash episode at `offset` events into the refresh. Returns whether
/// the scheduled crash fired (false = the refresh finished first).
fn deferred_refresh_episode(offset: u64) -> bool {
    let (db, parts) = build_deferred(12);
    let catalog = db.export_catalog();
    let stale = db.dump_view(DEFERRED_VIEW).unwrap();
    assert!(!stale.is_empty(), "pre-refresh view must have contents");

    parts.clock.arm(&FaultSchedule::crash_at(offset));
    let refresh = db.refresh_deferred_view(DEFERRED_VIEW);
    let fired = parts.clock.fired();
    drop(db);

    parts.disk.crash_restore();
    parts.store.crash_restore();
    parts.clock.disarm();
    let (db, _recovery) = Database::with_parts_recovered(
        Arc::new(parts.disk.clone()),
        Box::new(parts.store.clone()),
        Some(&catalog),
        256,
        Duration::from_secs(2),
    )
    .unwrap();
    let _ = db.run_ghost_cleanup().unwrap();

    let stored = db.dump_view(DEFERRED_VIEW).unwrap();
    assert!(
        !stored.is_empty(),
        "crash at offset {offset}: view empty after recovery (refresh not atomic; \
         refresh result was {refresh:?})"
    );
    // All-or-nothing: the recovered view is the stale contents (refresh
    // undone) or exactly matches recomputation from base (refresh
    // committed). A partial mix matches neither.
    let fresh_ok = db.verify_view(DEFERRED_VIEW).is_ok();
    let stale_ok = stored == stale;
    assert!(
        fresh_ok || stale_ok,
        "crash at offset {offset}: recovered view is neither the pre-refresh \
         contents nor a full refresh (refresh result {refresh:?}, {} rows)",
        stored.len()
    );
    if refresh.is_ok() && !fired {
        assert!(fresh_ok, "acked refresh must survive the crash (offset {offset})");
    }
    fired
}

#[test]
fn deferred_refresh_crash_window_is_all_or_nothing() {
    // Sweep the entire refresh window: offset 0 (first durable event of
    // the refresh) until the schedule no longer fires inside it.
    let mut fired_any = false;
    let mut offset = 0u64;
    loop {
        let fired = deferred_refresh_episode(offset);
        fired_any |= fired;
        if !fired {
            break;
        }
        offset += 2;
        assert!(offset < 10_000, "refresh window unexpectedly unbounded");
    }
    assert!(fired_any, "sweep never landed a crash inside the refresh");
    assert!(offset >= 2, "refresh window too small to be swept");
}

// ---- cascading view-graph crash matrix --------------------------------
//
// With a derived-view chain stacked on the bank view (identity levels →
// global rollup), every crash point must recover a state where each chain
// level equals BOTH a recomputation from base and a one-level fold of its
// immediate parent, losing transactions' cascades never survive redo, and
// the terminal rollup still conserves total balance. The probe rows land
// crashes exactly *between* cascade levels of a commit-time flush — the
// seam where a naive implementation leaves a half-propagated chain.

use txview_engine::torture::run_cascade_probe_sweep;

#[test]
fn chained_views_survive_every_crash_point() {
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let cfg = TortureConfig { mode, txns: 12, seed: 7, chain_depth: 2, ..Default::default() };
        let report = run_sweep(&cfg, 32).unwrap();
        assert!(report.episodes >= 24, "episodes {}", report.episodes);
        assert!(
            report.violations.is_empty(),
            "chain oracle violations ({mode:?}): {:#?}",
            report.violations
        );
        assert!(report.losers_undone > 0, "no crash point caught a durable loser");
    }
}

#[test]
fn crashes_between_cascade_levels_recover_the_whole_chain() {
    // Depth 4 gives three level seams per flush; the probe sweep strides
    // crash points across every observed `view.cascade.level` offset.
    let cfg = TortureConfig { txns: 12, seed: 7, chain_depth: 4, ..Default::default() };
    let report = run_cascade_probe_sweep(&cfg, 8).unwrap();
    assert_eq!(report.per_probe.len(), 1);
    assert!(
        report.per_probe[0].1 >= 3,
        "only {} mid-cascade crash episodes — probe coverage collapsed",
        report.per_probe[0].1
    );
    assert!(
        report.violations.is_empty(),
        "mid-cascade crash violations: {:#?}",
        report.violations
    );
}

#[test]
fn sweep_is_reproducible_for_a_fixed_seed() {
    let a = run_sweep(&cfg(MaintenanceMode::Escrow), 10).unwrap();
    let b = run_sweep(&cfg(MaintenanceMode::Escrow), 10).unwrap();
    assert_eq!(a.horizon, b.horizon);
    assert_eq!(a.crash_events, b.crash_events);
    assert_eq!(a.acked_commits, b.acked_commits);
    assert_eq!(a.losers_undone, b.losers_undone);
    assert_eq!(a.violations.len(), b.violations.len());
}

// ---- replication crash matrix ----------------------------------------
//
// The WAL-shipping layer gets the same treatment as the single-node
// engine: sweep hard crashes over follower replay and over the leader
// while the follower is only partially caught up, and assert the
// replication oracles (reopen recovers to the follower's own durable
// prefix and never beyond; promotion recovers exactly the shipped durable
// prefix; every sync-acked commit survives) at every point.

use txview_engine::repl::{
    measure_follower_horizon, run_follower_crash_episode, run_leader_crash_episode,
    ChannelFaults, ReplConfig, ShipMode,
};
use txview_engine::torture::measure_horizon;

fn repl_cfg() -> TortureConfig {
    TortureConfig { txns: 12, seed: 7, ..Default::default() }
}

#[test]
fn follower_crash_mid_replay_recovers_to_its_durable_prefix() {
    // The episode's built-in oracle checks that after the crash the
    // follower's reopened log is a byte prefix of the leader's (never
    // beyond what was durably shipped), that redo-only reopen lands on the
    // reference replay fingerprint for that prefix, and that catch-up then
    // reconverges byte-identically.
    let cfg = repl_cfg();
    let rcfg = ReplConfig::default();
    let horizon = measure_follower_horizon(&cfg, &rcfg).unwrap();
    assert!(horizon > 4, "follower horizon {horizon} too small to sweep");
    for offset in [1, horizon / 4, horizon / 2, horizon - 1] {
        let ep = run_follower_crash_episode(&cfg, &rcfg, offset).unwrap();
        assert!(
            ep.violations.is_empty(),
            "follower crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "follower crash at offset {offset} never fired");
    }
}

#[test]
fn follower_replays_cascaded_chains_byte_identically() {
    // Cascade refreshes are ordinary redo records, so a follower replaying
    // the shipped WAL must converge on the exact chain bytes — the episode
    // oracle compares full fingerprints (chain views included) against a
    // reference replay of the same durable prefix, and crash points land
    // mid-replay while chain records are in flight.
    let cfg = TortureConfig { txns: 12, seed: 7, chain_depth: 2, ..Default::default() };
    let rcfg = ReplConfig::default();
    let horizon = measure_follower_horizon(&cfg, &rcfg).unwrap();
    assert!(horizon > 4, "follower horizon {horizon} too small to sweep");
    for offset in [1, horizon / 3, horizon / 2, horizon - 1] {
        let ep = run_follower_crash_episode(&cfg, &rcfg, offset).unwrap();
        assert!(
            ep.violations.is_empty(),
            "chained follower crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "follower crash at offset {offset} never fired");
    }
}

// ---- MIN/MAX recompute & hash-index crash matrix ----------------------
//
// The recompute-on-delete fallback rewrites a MIN/MAX view row from a base
// rescan under the deleter's X lock, and every hash-index mirror is a
// redo-logged bucket-page write. Two probes pin the seams: one between the
// recomputer's lock grant and the view-row rewrite, one immediately before
// each logged bucket write. Crashes at both must recover a view equal to
// recomputation AND a hash byte-identical to the B-tree (the verify oracle
// audits the hash on every episode).

use txview_engine::torture::run_minmax_probe_sweep;

fn minmax_cfg() -> TortureConfig {
    TortureConfig { txns: 16, seed: 7, minmax: true, ..Default::default() }
}

#[test]
fn minmax_and_hash_views_survive_every_crash_point() {
    let report = run_sweep(&minmax_cfg(), 32).unwrap();
    assert!(report.episodes >= 24, "episodes {}", report.episodes);
    assert!(
        report.violations.is_empty(),
        "minmax/hash oracle violations: {:#?}",
        report.violations
    );
    assert!(report.losers_undone > 0, "no crash point caught a durable loser");
}

#[test]
fn crashes_in_recompute_window_and_bucket_writes_recover() {
    let report = run_minmax_probe_sweep(&minmax_cfg(), 8).unwrap();
    assert_eq!(report.per_probe.len(), 2);
    for &(name, ran) in &report.per_probe {
        assert!(ran >= 3, "only {ran} crash episodes landed on probe {name}");
    }
    assert!(
        report.violations.is_empty(),
        "recompute/bucket-write crash violations: {:#?}",
        report.violations
    );
}

#[test]
fn follower_replays_minmax_and_hash_redo_byte_identically() {
    // Recompute rewrites and hash-bucket pages are ordinary redo records:
    // a follower crashing mid-replay must still reopen onto its durable
    // prefix and reconverge to the leader's exact bytes, hash pages
    // included (the episode oracle compares full fingerprints).
    let cfg = minmax_cfg();
    let rcfg = ReplConfig::default();
    let horizon = measure_follower_horizon(&cfg, &rcfg).unwrap();
    assert!(horizon > 4, "follower horizon {horizon} too small to sweep");
    for offset in [1, horizon / 3, horizon / 2, horizon - 1] {
        let ep = run_follower_crash_episode(&cfg, &rcfg, offset).unwrap();
        assert!(
            ep.violations.is_empty(),
            "minmax follower crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "follower crash at offset {offset} never fired");
    }
}

#[test]
fn promotion_after_partial_catch_up_serves_exactly_the_shipped_prefix() {
    // Async shipping plus duplicate/reorder channel faults keeps the
    // follower genuinely behind the leader's durable tail, so these crash
    // points kill the leader mid-catch-up. The episode oracle requires the
    // promoted follower to equal a reference recovery over exactly the
    // shipped durable prefix — nothing invented past it — while still
    // serving every commit whose log records made it into that prefix.
    let cfg = repl_cfg();
    let rcfg = ReplConfig {
        ship_mode: ShipMode::Async,
        faults: ChannelFaults { dup_p: 0.2, reorder_p: 0.2, ..ChannelFaults::default() },
        ..ReplConfig::default()
    };
    let horizon = measure_horizon(&cfg).unwrap();
    assert!(horizon > 8, "leader horizon {horizon} too small to sweep");
    for offset in [0, horizon / 5, horizon / 3, horizon / 2, horizon - 2] {
        let ep = run_leader_crash_episode(&cfg, &rcfg, offset, false).unwrap();
        assert!(
            ep.violations.is_empty(),
            "leader crash at offset {offset}: {:#?}",
            ep.violations
        );
        assert!(ep.crash_event.is_some(), "leader crash at offset {offset} never fired");
    }
}
