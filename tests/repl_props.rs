//! Property tests for WAL-shipping replication: follower replay must be a
//! pure function of the *log contents*, not of the delivery order. For any
//! duplicated, reordered subsequence of the leader's framed log — followed
//! by a full in-order retransmit, which is what the leader's go-back-N
//! recovery eventually produces — the follower converges to exactly the
//! state of a follower that replayed the log strictly in order, and
//! replaying the whole log a second time changes nothing (redo idempotence
//! across the wire).

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use txview_common::rng::Rng;
use txview_common::row;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_engine::repl::{ChannelFaults, Follower, Frame, Message, ReplChannel, ReplConfig};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};
use txview_storage::fault::{FaultClock, FaultDisk};
use txview_wal::{FaultLogStore, LogRecord, LogStore};

/// Build a small leader (accounts table + escrow sum view), run `txns`
/// committed/aborted transactions, and return its catalog plus the durable
/// framed log bytes — the exact bytes the replication stream ships.
fn shipped_log(seed: u64, txns: usize) -> (Vec<u8>, Vec<u8>) {
    let clock = FaultClock::new();
    let disk = FaultDisk::new(Arc::clone(&clock));
    let store = FaultLogStore::new(Arc::clone(&clock));
    let db = Database::with_parts(
        Arc::new(disk),
        Box::new(store.clone()),
        64,
        Duration::from_secs(2),
    )
    .unwrap();
    db.create_table(
        "accounts",
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("branch", ValueType::Int),
                Column::new("balance", ValueType::Int),
            ],
            vec![0],
        )
        .unwrap(),
    )
    .map(|t| {
        db.create_indexed_view(ViewSpec {
            name: "by_branch".into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .unwrap()
    })
    .unwrap();

    let mut rng = Rng::new(seed);
    let mut next_id = 0i64;
    for t in 0..txns {
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for _ in 0..=rng.below(3) {
            db.insert(&mut txn, "accounts", row![next_id, next_id % 4, 100i64]).unwrap();
            next_id += 1;
        }
        if t % 3 == 2 {
            // Aborts put CLRs in the shipped log too.
            db.rollback(&mut txn).unwrap();
        } else {
            db.commit(&mut txn).unwrap();
        }
    }
    db.log().flush_all().unwrap();
    let catalog = db.export_catalog();
    let shipped = store.read_from(0).unwrap();
    (catalog, shipped)
}

/// Cut the shipped bytes into single-record frames, exactly as the
/// stream's re-encoder would at batch size 1.
fn cut_frames(shipped: &[u8]) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while let Some((rec, used)) = LogRecord::decode_framed(&shipped[off..]).unwrap() {
        frames.push(Frame::new(
            0,
            off as u64,
            rec.lsn,
            rec.lsn,
            shipped[off..off + used].to_vec(),
        ));
        off += used;
    }
    assert_eq!(off, shipped.len(), "shipped log must cut into whole frames");
    frames
}

/// Generic committed-state fingerprint over this test's schema (the
/// engine-level `Follower::fingerprint` assumes the torture bank schema).
fn state_fp(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    for r in db.dump_table("accounts").unwrap() {
        out.extend_from_slice(&r.to_bytes());
    }
    for r in db.dump_view("by_branch").unwrap() {
        out.extend_from_slice(&r.to_bytes());
    }
    out
}

fn fresh_follower(catalog: &[u8], buffer: usize) -> Follower {
    let cfg = ReplConfig { reorder_buffer: buffer, ..ReplConfig::default() };
    Follower::new(cfg, catalog.to_vec()).unwrap()
}

fn feed(f: &mut Follower, ch: &ReplChannel, frames: &[Frame]) {
    for frame in frames {
        f.ingest(Message::Frame(frame.clone()), ch).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any dup/reorder-perturbed subsequence + in-order retransmit lands on
    /// the in-order replay state, byte for byte.
    #[test]
    fn perturbed_replay_converges_to_in_order_replay(
        seed in any::<u64>(),
        txns in 3usize..9,
    ) {
        let (catalog, shipped) = shipped_log(seed, txns);
        let frames = cut_frames(&shipped);
        prop_assert!(frames.len() >= 4, "workload produced too few records");
        let ch = ReplChannel::new(ChannelFaults::default(), 0);
        let buffer = frames.len() * 2 + 4;

        // Reference: strict in-order replay of every frame.
        let mut inorder = fresh_follower(&catalog, buffer);
        feed(&mut inorder, &ch, &frames);
        prop_assert_eq!(inorder.watermark(), frames.last().unwrap().end_lsn);
        prop_assert_eq!(inorder.durable_len(), shipped.len() as u64);
        let want = state_fp(inorder.db());

        // Perturbed: keep ~70% of frames, duplicate ~30% of the kept ones,
        // then shuffle the whole multiset. This is an arbitrary lossy
        // prefix of what a faulty channel delivers.
        let mut rng = Rng::new(seed ^ 0xC0FF_EE00_D00D_F00D);
        let mut perturbed: Vec<Frame> = Vec::new();
        for frame in &frames {
            if rng.chance(0.7) {
                perturbed.push(frame.clone());
                if rng.chance(0.3) {
                    perturbed.push(frame.clone());
                }
            }
        }
        for i in (1..perturbed.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perturbed.swap(i, j);
        }

        let mut f = fresh_follower(&catalog, buffer);
        feed(&mut f, &ch, &perturbed);
        // The follower must never run ahead of the longest contiguous
        // prefix it was given, and never past the shipped log.
        prop_assert!(f.durable_len() <= shipped.len() as u64);
        // In-order retransmit (go-back-N from offset 0) completes replay.
        feed(&mut f, &ch, &frames);
        prop_assert_eq!(f.watermark(), inorder.watermark());
        prop_assert_eq!(f.durable_len(), shipped.len() as u64);
        prop_assert_eq!(state_fp(f.db()), want.clone());
        // The follower's own log is byte-identical to the leader's.
        prop_assert_eq!(f.store().read_from(0).unwrap(), shipped.clone());

        // Redo idempotence across the wire: a full second replay of the
        // log must change nothing.
        feed(&mut f, &ch, &frames);
        prop_assert_eq!(state_fp(f.db()), want);
    }
}
