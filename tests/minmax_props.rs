//! Differential property tests for MIN/MAX view maintenance and the hash
//! point-read fast path.
//!
//! A random stream of inserts / updates / deletes (with the delete mix
//! deliberately biased toward the current extremum, the expensive
//! recompute-from-base path) runs against a MIN/MAX/AVG view while a plain
//! in-process `BTreeMap` model tracks the committed base rows. After the
//! stream the stored view must be byte-identical to a full recomputation —
//! both the engine's own (`verify_view`, which also audits the hash mirror
//! against the B-tree) and an *independent* one computed here from the
//! model. Streams include transaction rollbacks, savepoint partial
//! rollbacks, and (in the second property) a hard crash at an arbitrary
//! durable event followed by recovery.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use txview_common::schema::{Column, Schema};
use txview_common::value::ValueType;
use txview_common::{row, Row, Value};
use txview_engine::{
    AggSpec, Database, IsolationLevel, MaintenanceMode, Predicate, ViewSource, ViewSpec,
};
use txview_storage::fault::{FaultClock, FaultDisk, FaultPoint, FaultSchedule};
use txview_wal::FaultLogStore;

const VIEW: &str = "reading_stats";
const GROUPS: i64 = 4;

/// Committed (or in-flight) base state: id → (group, value).
type Model = BTreeMap<i64, (i64, i64)>;

#[derive(Clone, Debug)]
enum Fate {
    Commit,
    Rollback,
    /// Roll back to the most recent savepoint of the transaction (if one
    /// was taken), then commit what is left.
    Partial,
}

#[derive(Clone, Debug)]
enum Op {
    Insert { grp: i64, val: i64 },
    /// Delete the row currently holding the group MAX — the recompute path.
    DeleteMax { grp: i64 },
    /// Delete the row currently holding the group MIN — the recompute path.
    DeleteMin { grp: i64 },
    /// Delete an arbitrary live row (usually non-extremal, the cheap path).
    DeleteAny { pick: usize },
    /// Rewrite a live row, possibly moving it to another group.
    Update { pick: usize, grp: i64, val: i64 },
    Savepoint,
    Boundary(Fate),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let grp = 0..GROUPS;
    let val = 1i64..=60;
    prop_oneof![
        5 => (grp.clone(), val.clone()).prop_map(|(grp, val)| Op::Insert { grp, val }),
        2 => (0..GROUPS).prop_map(|grp| Op::DeleteMax { grp }),
        2 => (0..GROUPS).prop_map(|grp| Op::DeleteMin { grp }),
        2 => any::<usize>().prop_map(|pick| Op::DeleteAny { pick }),
        2 => (any::<usize>(), grp, val).prop_map(|(pick, grp, val)| Op::Update { pick, grp, val }),
        1 => Just(Op::Savepoint),
        3 => Just(Op::Boundary(Fate::Commit)),
        1 => Just(Op::Boundary(Fate::Rollback)),
        1 => Just(Op::Boundary(Fate::Partial)),
    ]
}

/// readings(id, grp, val) + a MIN/MAX/AVG view in XLock maintenance with a
/// hash point-read index on top.
fn setup(db: &Arc<Database>) {
    let t = db
        .create_table(
            "readings",
            Schema::new(
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("grp", ValueType::Int),
                    Column::new("val", ValueType::Int),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    db.create_indexed_view(ViewSpec {
        name: VIEW.into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![
            AggSpec::SumInt { col: 2 },
            AggSpec::Min { col: 2 },
            AggSpec::Max { col: 2 },
            AggSpec::Avg { col: 2, float: false },
        ],
        filter: Predicate::True,
        maintenance: MaintenanceMode::XLock,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db.create_hash_index(VIEW).unwrap();
}

/// Pick the live row id holding the extremum of `grp` (ties broken by
/// lowest id so the choice is deterministic). None if the group is empty.
fn extremum_of(model: &Model, grp: i64, max: bool) -> Option<i64> {
    let mut best: Option<(i64, i64)> = None; // (val, id)
    for (&id, &(g, v)) in model {
        if g != grp {
            continue;
        }
        let better = match best {
            None => true,
            Some((bv, _)) if max => v > bv,
            Some((bv, _)) => v < bv,
        };
        if better {
            best = Some((v, id));
        }
    }
    best.map(|(_, id)| id)
}

fn nth_id(model: &Model, pick: usize) -> Option<i64> {
    if model.is_empty() {
        None
    } else {
        model.keys().nth(pick % model.len()).copied()
    }
}

struct StreamOutcome {
    /// State after the last *acknowledged* commit.
    acked: Model,
    /// If a commit call returned an error (crash during the commit
    /// protocol), the state it was trying to commit — recovery may
    /// legitimately surface either `acked` or this.
    inflight: Option<Model>,
    /// The whole stream ran without a single error.
    completed: bool,
}

/// Drive the op stream. A crash does not error subsequent calls — the
/// fault layer keeps absorbing writes into the doomed image — so with a
/// `clock` the stream stops (and acks stop counting) the moment the crash
/// fires, exactly like the torture harness. In a fault-free run every call
/// must succeed.
fn drive(db: &Arc<Database>, ops: &[Op], clock: Option<&FaultClock>) -> StreamOutcome {
    let mut acked: Model = Model::new();
    let mut pending: Model = acked.clone();
    let mut next_id = 0i64;
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let mut sp: Option<(usize, Model)> = None;

    let fired = || clock.is_some_and(|c| c.fired());
    macro_rules! attempt {
        ($call:expr) => {
            if $call.is_err() || fired() {
                // Mid-transaction failure or crash: the open txn has no
                // commit record at the crash point, so it is a loser.
                return StreamOutcome { acked, inflight: None, completed: false };
            }
        };
    }

    for op in ops {
        match op {
            Op::Insert { grp, val } => {
                let id = next_id;
                next_id += 1;
                attempt!(db.insert(&mut txn, "readings", row![id, *grp, *val]));
                pending.insert(id, (*grp, *val));
            }
            Op::DeleteMax { grp } => {
                if let Some(id) = extremum_of(&pending, *grp, true) {
                    attempt!(db.delete(&mut txn, "readings", &[Value::Int(id)]));
                    pending.remove(&id);
                }
            }
            Op::DeleteMin { grp } => {
                if let Some(id) = extremum_of(&pending, *grp, false) {
                    attempt!(db.delete(&mut txn, "readings", &[Value::Int(id)]));
                    pending.remove(&id);
                }
            }
            Op::DeleteAny { pick } => {
                if let Some(id) = nth_id(&pending, *pick) {
                    attempt!(db.delete(&mut txn, "readings", &[Value::Int(id)]));
                    pending.remove(&id);
                }
            }
            Op::Update { pick, grp, val } => {
                if let Some(id) = nth_id(&pending, *pick) {
                    attempt!(db.update(&mut txn, "readings", row![id, *grp, *val]));
                    pending.insert(id, (*grp, *val));
                }
            }
            Op::Savepoint => {
                sp = Some((db.savepoint(&txn), pending.clone()));
            }
            Op::Boundary(fate) => {
                match fate {
                    Fate::Commit => {
                        // A commit the crash interrupted (error, or Ok with
                        // the crash firing during its flush) may or may not
                        // have reached durability — either outcome is legal.
                        if db.commit(&mut txn).is_err() || fired() {
                            return StreamOutcome {
                                acked,
                                inflight: Some(pending),
                                completed: false,
                            };
                        }
                        acked = pending.clone();
                    }
                    Fate::Rollback => {
                        attempt!(db.rollback(&mut txn));
                        pending = acked.clone();
                    }
                    Fate::Partial => {
                        if let Some((tok, snap)) = sp.take() {
                            attempt!(db.rollback_to_savepoint(&mut txn, tok));
                            pending = snap;
                        }
                        if db.commit(&mut txn).is_err() || fired() {
                            return StreamOutcome {
                                acked,
                                inflight: Some(pending),
                                completed: false,
                            };
                        }
                        acked = pending.clone();
                    }
                }
                sp = None;
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
        }
    }
    // Close the trailing open transaction.
    if db.commit(&mut txn).is_err() || fired() {
        return StreamOutcome { acked, inflight: Some(pending), completed: false };
    }
    acked = pending;
    StreamOutcome { acked, inflight: None, completed: true }
}

fn model_rows(model: &Model) -> Vec<Row> {
    model.iter().map(|(&id, &(g, v))| row![id, g, v]).collect()
}

/// Independent full recomputation: derive every group's COUNT/SUM/MIN/MAX
/// from `model` in plain Rust and compare against what the view answers,
/// through both the B-tree (`view_lookup` via `view_aggregates`) and the
/// hash fast path (`view_point_read`).
fn check_against_model(db: &Arc<Database>, model: &Model) {
    db.verify_view(VIEW).unwrap(); // engine recompute + hash-vs-btree audit
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for g in 0..GROUPS {
        let vals: Vec<i64> =
            model.values().filter(|(grp, _)| *grp == g).map(|&(_, v)| v).collect();
        let group = [Value::Int(g)];
        let got = db.view_aggregates(&mut txn, VIEW, &group).unwrap();
        if vals.is_empty() {
            if let Some((count, _)) = got {
                assert_eq!(count, 0, "group {} should be empty", g);
            }
            assert_eq!(db.view_avg(&mut txn, VIEW, &group, 3).unwrap(), Value::Null);
        } else {
            let (count, aggs) = got.expect("live group missing from view");
            let sum: i64 = vals.iter().sum();
            let min = *vals.iter().min().unwrap();
            let max = *vals.iter().max().unwrap();
            assert_eq!(count, vals.len() as i64, "COUNT of group {}", g);
            assert_eq!(&aggs[0], &Value::Int(sum), "SUM of group {}", g);
            assert_eq!(&aggs[1], &Value::Int(min), "MIN of group {}", g);
            assert_eq!(&aggs[2], &Value::Int(max), "MAX of group {}", g);
            // AVG is stored as a running SUM; the quotient is derived at
            // read time.
            assert_eq!(&aggs[3], &Value::Int(sum), "AVG backing SUM of group {}", g);
            assert_eq!(
                db.view_avg(&mut txn, VIEW, &group, 3).unwrap(),
                Value::Float(sum as f64 / vals.len() as f64)
            );
        }
        // Hash fast path answers byte-identically to the B-tree.
        assert_eq!(
            db.view_point_read(&mut txn, VIEW, &group).unwrap(),
            db.view_lookup(&mut txn, VIEW, &group).unwrap(),
            "hash/btree divergence on group {}",
            g
        );
    }
    db.commit(&mut txn).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Fault-free streams: after any mix of inserts, extremum deletes,
    /// updates, rollbacks, and savepoint partial rollbacks, the stored
    /// MIN/MAX/AVG view equals a full recomputation and the hash index
    /// agrees with the B-tree on every group.
    #[test]
    fn minmax_stream_matches_full_recompute(
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let db = Database::new_in_memory(1024);
        setup(&db);
        let out = drive(&db, &ops, None);
        prop_assert!(out.completed, "fault-free stream hit an engine error");
        prop_assert_eq!(db.dump_table("readings").unwrap(), model_rows(&out.acked));
        check_against_model(&db, &out.acked);
    }

    /// Point reads through the hash index are byte-identical to B-tree
    /// lookups for present, absent, and emptied-out groups alike, at the
    /// isolation level the fast path serves (read committed).
    #[test]
    fn hash_point_reads_match_btree(
        ops in prop::collection::vec(arb_op(), 1..120),
        probes in prop::collection::vec(-2i64..GROUPS + 3, 1..24),
    ) {
        let db = Database::new_in_memory(1024);
        setup(&db);
        let out = drive(&db, &ops, None);
        prop_assert!(out.completed);
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for g in probes {
            let group = [Value::Int(g)];
            prop_assert_eq!(
                db.view_point_read(&mut txn, VIEW, &group).unwrap(),
                db.view_lookup(&mut txn, VIEW, &group).unwrap(),
                "hash/btree divergence on probe {}",
                g
            );
        }
        db.commit(&mut txn).unwrap();
    }
}

proptest! {
    // Each case builds a fault-injected database and runs full recovery —
    // keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Crash mid-stream: arm a hard crash at an arbitrary durable event,
    /// run the stream into it, recover, and require (a) the recovered base
    /// is exactly the acked state — or the one commit that was in flight
    /// when the crash hit, atomically — and (b) the recovered view equals
    /// an independent full recomputation from that base, through both read
    /// paths, hash mirror included.
    #[test]
    fn crash_mid_stream_recovers_to_a_recomputable_state(
        ops in prop::collection::vec(arb_op(), 1..80),
        offset in 0u64..160,
    ) {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(Arc::clone(&clock));
        let store = FaultLogStore::new(Arc::clone(&clock));
        let db = Database::with_parts(
            Arc::new(disk.clone()),
            Box::new(store.clone()),
            256,
            Duration::from_secs(2),
        )
        .unwrap();
        let c = Arc::clone(&clock);
        db.pool().set_crash_probe(Arc::new(move |p| {
            c.tick(FaultPoint::Probe(p));
        }));
        let c = Arc::clone(&clock);
        db.log().set_crash_probe(Arc::new(move |p| {
            c.tick(FaultPoint::Probe(p));
        }));
        setup(&db);
        db.checkpoint().unwrap();
        let catalog = db.export_catalog();

        clock.arm(&FaultSchedule::crash_at(offset));
        let out = drive(&db, &ops, Some(&clock));
        let fired = clock.fired();
        prop_assert!(fired || out.completed, "stream stopped without a crash");
        drop(db);

        disk.crash_restore();
        store.crash_restore();
        clock.disarm();
        let (db, _recovery) = Database::with_parts_recovered(
            Arc::new(disk.clone()),
            Box::new(store.clone()),
            Some(&catalog),
            256,
            Duration::from_secs(2),
        )
        .unwrap();
        let _ = db.run_ghost_cleanup().unwrap();

        // Which state survived? Acked, always — unless the crash landed
        // inside a commit, which may surface whole or not at all.
        let base = db.dump_table("readings").unwrap();
        let survivor = if base == model_rows(&out.acked) {
            out.acked.clone()
        } else if let Some(inflight) = &out.inflight {
            prop_assert_eq!(
                &base,
                &model_rows(inflight),
                "recovered base is neither the acked state nor the in-flight commit"
            );
            inflight.clone()
        } else {
            prop_assert_eq!(
                &base,
                &model_rows(&out.acked),
                "recovered base does not match the acked state"
            );
            unreachable!()
        };
        check_against_model(&db, &survivor);
    }
}

