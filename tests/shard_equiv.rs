//! Differential equivalence battery for the sharded hot-path structures
//! (PR 5). Each sharded implementation is driven op-for-op against a
//! single-map, single-mutex reference model implementing the *pre-sharding*
//! semantics, over randomized programs that exercise the interesting
//! interleavings sequentially:
//!
//! * **publish-at-commit orderings** — version-chain entries arrive with
//!   out-of-order commit LSNs (concurrent committers publish in
//!   nondeterministic order), so `insert_sorted` placement and
//!   base-selection logic are stressed;
//! * **GC past the watermark** — fold/prune horizons strictly below the
//!   newest commit LSN, so chains are compacted while "active snapshots"
//!   still need the tail, and reads at every LSN in a grid must agree;
//! * **registry churn** — interleaved insert/remove/update/with_entry on
//!   the txn/touched-style [`ShardMap`], with the O(1) length gauge checked
//!   against the reference after every op;
//! * **ghost churn** — enqueue/drain/clear with duplicate keys, checking
//!   dedup decisions, backlog, and drained *sets* (drain order across
//!   stripes is not part of the contract; set-equality and no-duplicates
//!   are).
//!
//! Sharding is a pure partitioning of the key space: every one of these
//! properties must hold exactly, not approximately.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};
use txview_repro::common::sharded::ShardMap;
use txview_repro::common::{IndexId, Lsn};
use txview_repro::engine::ghosts::GhostQueue;
use txview_repro::engine::versions::{DeltaPairs, VersionStore, MAX_CHAIN};
use txview_repro::wal::record::ValueDelta;

// ---- reference model for the version store ------------------------------
//
// A faithful reimplementation of the pre-sharding store: one HashMap, same
// chain representation, same fold/prune rules. Kept deliberately close to
// the production code so any divergence is a sharding bug, not a model bug.

#[derive(Clone, Debug)]
enum RefPayload {
    Full(Option<Vec<u8>>),
    Delta(DeltaPairs),
}

#[derive(Clone, Debug)]
struct RefEntry {
    commit_lsn: Lsn,
    payload: RefPayload,
}

const BASE_VERSION: Lsn = Lsn(1);

#[derive(Default)]
struct RefVersionStore {
    chains: HashMap<(IndexId, Vec<u8>), Vec<RefEntry>>,
}

fn materialize(cur: Option<Vec<u8>>, pairs: &[(u16, ValueDelta)]) -> txview_repro::common::Result<Option<Vec<u8>>> {
    let mut v = cur
        .map(|b| i64::from_be_bytes(b.as_slice().try_into().expect("8-byte row")))
        .unwrap_or(0);
    for (_, d) in pairs {
        match d {
            ValueDelta::Int(x) => v += x,
            ValueDelta::Float(_) => unreachable!("test generates Int deltas only"),
        }
    }
    Ok(Some(v.to_be_bytes().to_vec()))
}

impl RefVersionStore {
    fn insert_sorted(chain: &mut Vec<RefEntry>, entry: RefEntry) {
        let pos = chain
            .iter()
            .rposition(|e| e.commit_lsn <= entry.commit_lsn)
            .map(|p| p + 1)
            .unwrap_or(0);
        chain.insert(pos, entry);
    }

    fn ensure_base(&mut self, index: IndexId, key: &[u8], value: Option<Vec<u8>>) {
        self.chains.entry((index, key.to_vec())).or_insert_with(|| {
            vec![RefEntry { commit_lsn: BASE_VERSION, payload: RefPayload::Full(value) }]
        });
    }

    fn publish_delta(&mut self, index: IndexId, key: &[u8], commit_lsn: Lsn, pairs: DeltaPairs, horizon: Lsn) {
        let chain = self.chains.entry((index, key.to_vec())).or_default();
        Self::insert_sorted(chain, RefEntry { commit_lsn, payload: RefPayload::Delta(pairs) });
        if chain.len() > MAX_CHAIN {
            Self::fold(chain, horizon);
        }
    }

    fn publish_full(&mut self, index: IndexId, key: &[u8], commit_lsn: Lsn, value: Option<Vec<u8>>, horizon: Lsn) {
        let chain = self.chains.entry((index, key.to_vec())).or_default();
        Self::insert_sorted(chain, RefEntry { commit_lsn, payload: RefPayload::Full(value) });
        if chain.len() > MAX_CHAIN {
            if let Some(pos) = chain.iter().rposition(|e| matches!(e.payload, RefPayload::Full(_))) {
                let cutoff = chain[pos].commit_lsn;
                if cutoff <= horizon && chain[..pos].iter().all(|e| e.commit_lsn <= cutoff) {
                    chain.drain(..pos);
                }
            }
        }
    }

    fn fold(chain: &mut Vec<RefEntry>, horizon: Lsn) {
        while chain.len() > MAX_CHAIN && chain.len() > 1 && chain[1].commit_lsn <= horizon {
            let second = chain.remove(1);
            let base = &mut chain[0];
            match second.payload {
                RefPayload::Full(v) => base.payload = RefPayload::Full(v),
                RefPayload::Delta(pairs) => {
                    let cur = match &base.payload {
                        RefPayload::Full(v) => v.clone(),
                        RefPayload::Delta(_) => unreachable!("chain head is always Full"),
                    };
                    base.payload = RefPayload::Full(materialize(cur, &pairs).unwrap());
                }
            }
            base.commit_lsn = base.commit_lsn.max(second.commit_lsn);
        }
    }

    fn read_at(&self, index: IndexId, key: &[u8], s: Lsn) -> Option<Option<Vec<u8>>> {
        let chain = self.chains.get(&(index, key.to_vec()))?;
        let mut base: Option<(Lsn, Option<Vec<u8>>)> = None;
        for e in chain {
            if e.commit_lsn <= s {
                if let RefPayload::Full(v) = &e.payload {
                    if base.as_ref().is_none_or(|(l, _)| e.commit_lsn >= *l) {
                        base = Some((e.commit_lsn, v.clone()));
                    }
                }
            }
        }
        let Some((base_lsn, mut value)) = base else {
            return Some(None);
        };
        for e in chain {
            if e.commit_lsn > base_lsn && e.commit_lsn <= s {
                if let RefPayload::Delta(pairs) = &e.payload {
                    value = materialize(value, pairs).unwrap();
                }
            }
        }
        Some(value)
    }

    fn keys_for(&self, index: IndexId) -> Vec<Vec<u8>> {
        self.chains.keys().filter(|(i, _)| *i == index).map(|(_, k)| k.clone()).collect()
    }
}

#[derive(Clone, Debug)]
enum VsOp {
    /// `ensure_base` with a clean pre-image (row-creation path).
    Base { idx: u8, key: u8, value: Option<i64> },
    /// Publish a committed escrow delta. `lsn_jitter`/`hor_lag` are turned
    /// into an actual commit LSN / horizon by the executor, which models
    /// the commit-watermark protocol (see below).
    Delta { idx: u8, key: u8, lsn_jitter: u64, delta: i64, hor_lag: u64 },
    /// Publish a committed full image (X-lock path; `None` = removed).
    Full { idx: u8, key: u8, lsn_jitter: u64, value: Option<i64>, hor_lag: u64 },
}

fn arb_vs_op() -> impl Strategy<Value = VsOp> {
    // 2 indexes x 4 keys concentrates ops so chains exceed MAX_CHAIN and
    // fold/prune paths actually run.
    prop_oneof![
        1 => (0u8..2, 0u8..4, prop_oneof![Just(None), (0i64..100).prop_map(Some)])
            .prop_map(|(idx, key, value)| VsOp::Base { idx, key, value }),
        6 => (0u8..2, 0u8..4, 0u64..8, -50i64..50, 0u64..8)
            .prop_map(|(idx, key, lsn_jitter, delta, hor_lag)| VsOp::Delta {
                idx, key, lsn_jitter, delta, hor_lag,
            }),
        2 => (0u8..2, 0u8..4, 0u64..8, prop_oneof![Just(None), (0i64..100).prop_map(Some)], 0u64..8)
            .prop_map(|(idx, key, lsn_jitter, value, hor_lag)| VsOp::Full {
                idx, key, lsn_jitter, value, hor_lag,
            }),
    ]
}

/// Models the commit-watermark protocol governing publish-at-commit: commit
/// LSNs may be published out of order (concurrent committers), but the fold
/// horizon is monotone and every *future* commit LSN is strictly above any
/// horizon already used — the engine's ticket protocol guarantees exactly
/// this, and the store's fold invariant ("a folded base never out-sorts a
/// later publish") depends on it.
struct WatermarkModel {
    /// Highest horizon handed to any fold/prune so far.
    hwm: u64,
}

impl WatermarkModel {
    fn stamp(&mut self, lsn_jitter: u64, hor_lag: u64) -> (Lsn, Lsn) {
        // Jitter makes consecutive publishes non-monotone (out-of-order
        // commit ordering) while staying strictly above the watermark.
        let commit_lsn = self.hwm + 1 + lsn_jitter;
        // Horizon trails the commit LSN (active snapshots lag), never
        // regresses, and never reaches the new commit.
        let horizon = (commit_lsn - 1 - hor_lag.min(commit_lsn - 1 - self.hwm)).max(self.hwm);
        self.hwm = horizon;
        (Lsn(commit_lsn), Lsn(horizon))
    }
}

fn enc(v: Option<i64>) -> Option<Vec<u8>> {
    v.map(|x| x.to_be_bytes().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The sharded version store and the single-map reference agree on
    /// every read at every snapshot LSN after every program, including
    /// programs that fold and prune chains past a lagging watermark.
    #[test]
    fn version_store_matches_single_map_reference(ops in prop::collection::vec(arb_vs_op(), 1..300)) {
        let sharded = VersionStore::new();
        let mut reference = RefVersionStore::default();
        let mut wm = WatermarkModel { hwm: 1 };
        // Snapshot LSNs worth probing: every boundary the program created.
        let mut grid: std::collections::BTreeSet<u64> = [0, 1, 2].into();
        for op in &ops {
            match op {
                VsOp::Base { idx, key, value } => {
                    let (i, k) = (IndexId(*idx as u32), [*key]);
                    sharded.ensure_base(i, &k, enc(*value));
                    reference.ensure_base(i, &k, enc(*value));
                }
                VsOp::Delta { idx, key, lsn_jitter, delta, hor_lag } => {
                    let (i, k) = (IndexId(*idx as u32), [*key]);
                    // Engine protocol: the chain is seeded with the
                    // pre-modification image before any publish (the fold
                    // invariant "chain head is Full" depends on it).
                    sharded.ensure_base(i, &k, None);
                    reference.ensure_base(i, &k, None);
                    let (commit_lsn, horizon) = wm.stamp(*lsn_jitter, *hor_lag);
                    grid.extend([commit_lsn.0.saturating_sub(1), commit_lsn.0, commit_lsn.0 + 1, horizon.0]);
                    let pairs: DeltaPairs = vec![(0, ValueDelta::Int(*delta))];
                    sharded
                        .publish_delta(i, &k, commit_lsn, pairs.clone(), horizon, &materialize)
                        .unwrap();
                    reference.publish_delta(i, &k, commit_lsn, pairs, horizon);
                }
                VsOp::Full { idx, key, lsn_jitter, value, hor_lag } => {
                    let (i, k) = (IndexId(*idx as u32), [*key]);
                    sharded.ensure_base(i, &k, None);
                    reference.ensure_base(i, &k, None);
                    let (commit_lsn, horizon) = wm.stamp(*lsn_jitter, *hor_lag);
                    grid.extend([commit_lsn.0.saturating_sub(1), commit_lsn.0, commit_lsn.0 + 1, horizon.0]);
                    sharded.publish_full(i, &k, commit_lsn, enc(*value), horizon);
                    reference.publish_full(i, &k, commit_lsn, enc(*value), horizon);
                }
            }
        }
        grid.insert(wm.hwm + 10);
        // Key sets per index agree (order is not part of the contract).
        for idx in 0..2u32 {
            let mut a = sharded.keys_for(IndexId(idx));
            let mut b = reference.keys_for(IndexId(idx));
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "keys_for({}) diverged", idx);
        }
        // Every (index, key) read over a full LSN grid agrees — including
        // s = 0 (predates the base) and s past every published LSN.
        for idx in 0..2u32 {
            for key in 0..4u8 {
                let (i, k) = (IndexId(idx), [key]);
                prop_assert_eq!(sharded.has_chain(i, &k), reference.chains.contains_key(&(i, k.to_vec())));
                for &s in &grid {
                    let got = sharded.read_at(i, &k, Lsn(s), &materialize).unwrap();
                    let want = reference.read_at(i, &k, Lsn(s));
                    prop_assert_eq!(
                        got, want,
                        "read_at(idx={}, key={}, s={}) diverged", idx, key, s
                    );
                }
            }
        }
    }
}

// ---- ShardMap vs HashMap -------------------------------------------------

#[derive(Clone, Debug)]
enum MapOp {
    Insert(i64, i64),
    Remove(i64),
    /// `update`: add to the value if present (touched-registry idiom).
    Update(i64, i64),
    /// `with_entry`: or-default then add (note_additive idiom).
    WithEntry(i64, i64),
    Clear,
}

fn arb_map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        4 => (0i64..24, -100i64..100).prop_map(|(k, v)| MapOp::Insert(k, v)),
        3 => (0i64..24).prop_map(MapOp::Remove),
        3 => (0i64..24, -100i64..100).prop_map(|(k, v)| MapOp::Update(k, v)),
        3 => (0i64..24, -100i64..100).prop_map(|(k, v)| MapOp::WithEntry(k, v)),
        1 => Just(MapOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The sharded registry map agrees with a plain HashMap op-for-op,
    /// including every return value and the O(1) length gauge.
    #[test]
    fn shard_map_matches_hash_map(ops in prop::collection::vec(arb_map_op(), 1..200)) {
        let sharded: ShardMap<i64, i64> = ShardMap::new(8);
        let mut reference: HashMap<i64, i64> = HashMap::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(sharded.insert(k, v), reference.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(sharded.remove(&k), reference.remove(&k));
                }
                MapOp::Update(k, v) => {
                    let got = sharded.update(&k, |slot| {
                        slot.map(|x| {
                            *x += v;
                            *x
                        })
                    });
                    let want = reference.get_mut(&k).map(|x| {
                        *x += v;
                        *x
                    });
                    prop_assert_eq!(got, want);
                }
                MapOp::WithEntry(k, v) => {
                    let got = sharded.with_entry(k, |x| {
                        *x += v;
                        *x
                    });
                    let e = reference.entry(k).or_default();
                    *e += v;
                    prop_assert_eq!(got, *e);
                }
                MapOp::Clear => {
                    sharded.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(sharded.len(), reference.len(), "length gauge drifted");
            prop_assert_eq!(sharded.is_empty(), reference.is_empty());
        }
        let mut got = sharded.snapshot();
        let mut want: Vec<(i64, i64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "final contents diverged");
        let sum = sharded.fold(0i64, |acc, _, v| acc + v);
        prop_assert_eq!(sum, reference.values().sum::<i64>());
    }
}

// ---- GhostQueue vs reference dedup model ---------------------------------

#[derive(Default)]
struct RefGhostQueue {
    queue: VecDeque<(IndexId, Vec<u8>)>,
    queued: HashSet<(IndexId, Vec<u8>)>,
}

impl RefGhostQueue {
    fn enqueue(&mut self, index: IndexId, key: Vec<u8>) -> bool {
        let gk = (index, key);
        if self.queued.insert(gk.clone()) {
            self.queue.push_back(gk);
            true
        } else {
            false
        }
    }

    fn drain(&mut self) -> Vec<(IndexId, Vec<u8>)> {
        self.queued.clear();
        self.queue.drain(..).collect()
    }
}

#[derive(Clone, Debug)]
enum GhostOp {
    Enqueue(u8, u8),
    Drain,
    Clear,
}

fn arb_ghost_op() -> impl Strategy<Value = GhostOp> {
    prop_oneof![
        8 => (0u8..3, 0u8..12).prop_map(|(i, k)| GhostOp::Enqueue(i, k)),
        1 => Just(GhostOp::Drain),
        1 => Just(GhostOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The striped ghost queue makes the same dedup decisions, reports the
    /// same backlog, and drains the same key sets as the single-mutex
    /// reference (drain order across stripes is not part of the contract).
    #[test]
    fn ghost_queue_matches_reference(ops in prop::collection::vec(arb_ghost_op(), 1..200)) {
        let striped = GhostQueue::new();
        let mut reference = RefGhostQueue::default();
        for op in &ops {
            match *op {
                GhostOp::Enqueue(i, k) => {
                    let (index, key) = (IndexId(i as u32), vec![k]);
                    prop_assert_eq!(
                        striped.enqueue(index, key.clone()),
                        reference.enqueue(index, key),
                        "dedup decision diverged"
                    );
                }
                GhostOp::Drain => {
                    let mut got = striped.drain();
                    let mut want = reference.drain();
                    let n = got.len();
                    got.sort();
                    got.dedup();
                    prop_assert_eq!(got.len(), n, "striped drain yielded duplicates");
                    want.sort();
                    prop_assert_eq!(got, want, "drained sets diverged");
                }
                GhostOp::Clear => {
                    striped.clear();
                    reference.queue.clear();
                    reference.queued.clear();
                }
            }
            prop_assert_eq!(striped.len(), reference.queue.len(), "backlog gauge diverged");
            prop_assert_eq!(striped.is_empty(), reference.queue.is_empty());
        }
    }
}
