//! Property-based model checking: random DML programs (with rollbacks,
//! savepoints, filters, and crashes) against a pure in-memory model. After
//! every program, the table contents, the view contents, and the engine's
//! own `verify_view` must all agree with the model.

use proptest::prelude::*;
use std::collections::HashMap;
use txview_repro::prelude::*;
use txview_repro::row;

/// The reference model: pk → (group, amount).
type Model = HashMap<i64, (i64, i64)>;

#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, grp: i64, amount: i64 },
    Update { id: i64, grp: i64, amount: i64 },
    Delete { id: i64 },
    Commit,
    Rollback,
    SavepointRoundtrip { id: i64, grp: i64, amount: i64 },
    Crash { steal_milli: u16, seed: u64 },
    Cleanup,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..40, 0i64..4, 1i64..100).prop_map(|(id, grp, amount)| Op::Insert { id, grp, amount }),
        3 => (0i64..40, 0i64..4, 1i64..100).prop_map(|(id, grp, amount)| Op::Update { id, grp, amount }),
        3 => (0i64..40).prop_map(|id| Op::Delete { id }),
        3 => Just(Op::Commit),
        1 => Just(Op::Rollback),
        1 => (100i64..140, 0i64..4, 1i64..100)
            .prop_map(|(id, grp, amount)| Op::SavepointRoundtrip { id, grp, amount }),
        1 => (0u16..1000, any::<u64>()).prop_map(|(steal_milli, seed)| Op::Crash { steal_milli, seed }),
        1 => Just(Op::Cleanup),
    ]
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn setup(mode: MaintenanceMode, filter: Predicate) -> std::sync::Arc<Database> {
    let db = Database::new_in_memory(512);
    let t = db.create_table("items", schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "v".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter,
        maintenance: mode,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

/// Expected view contents from the model (only rows passing `min_amount`).
fn expected_view(model: &Model, min_amount: i64) -> HashMap<i64, (i64, i64)> {
    let mut out: HashMap<i64, (i64, i64)> = HashMap::new();
    for (_, (grp, amount)) in model.iter() {
        if *amount >= min_amount {
            let e = out.entry(*grp).or_insert((0, 0));
            e.0 += 1;
            e.1 += amount;
        }
    }
    out
}

fn check_against_model(db: &Database, model: &Model, min_amount: i64) {
    // Engine's own invariant first.
    db.verify_view("v").unwrap();
    // Table contents.
    let rows = db.dump_table("items").unwrap();
    assert_eq!(rows.len(), model.len(), "table cardinality");
    for r in &rows {
        let id = r.get(0).as_int().unwrap();
        let (grp, amount) = model.get(&id).expect("row must exist in model");
        assert_eq!(r.get(1).as_int().unwrap(), *grp);
        assert_eq!(r.get(2).as_int().unwrap(), *amount);
    }
    // View contents.
    let expected = expected_view(model, min_amount);
    let view_rows = db.dump_view("v").unwrap();
    assert_eq!(view_rows.len(), expected.len(), "view cardinality");
    for r in &view_rows {
        let grp = r.get(0).as_int().unwrap();
        let (count, sum) = expected.get(&grp).expect("group must exist in model");
        assert_eq!(r.get(1).as_int().unwrap(), *count, "count of group {grp}");
        assert_eq!(r.get(2).as_int().unwrap(), *sum, "sum of group {grp}");
    }
}

fn run_program(mode: MaintenanceMode, min_amount: i64, ops: Vec<Op>) {
    let filter = if min_amount > 0 {
        Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(min_amount) }
    } else {
        Predicate::True
    };
    let db = setup(mode, filter);
    let mut committed: Model = HashMap::new();
    let mut pending: Model = committed.clone();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);

    for op in ops {
        match op {
            Op::Insert { id, grp, amount } => {
                let res = db.insert(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Vacant(e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::DuplicateKey(_))));
                }
            }
            Op::Update { id, grp, amount } => {
                let res = db.update(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Occupied(mut e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Delete { id } => {
                let res = db.delete(&mut txn, "items", &[Value::Int(id)]);
                if pending.contains_key(&id) {
                    res.unwrap();
                    pending.remove(&id);
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Commit => {
                db.commit(&mut txn).unwrap();
                committed = pending.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Rollback => {
                db.rollback(&mut txn).unwrap();
                pending = committed.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::SavepointRoundtrip { id, grp, amount } => {
                // Do work after a savepoint, then roll it back: must be a
                // no-op overall.
                let sp = db.savepoint(&txn);
                if !pending.contains_key(&id) {
                    db.insert(&mut txn, "items", row![id, grp, amount]).unwrap();
                }
                db.rollback_to_savepoint(&mut txn, sp).unwrap();
            }
            Op::Crash { steal_milli, seed } => {
                // Whatever the open transaction did must vanish.
                std::mem::forget(txn);
                db.log().flush_all().unwrap();
                db.crash_and_recover(steal_milli as f64 / 1000.0, seed).unwrap();
                pending = committed.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Cleanup => {
                // Ghost cleanup must never change logical contents. Run it
                // between transactions (the open one has made no changes
                // that cleanup could observe under its instant locks).
                let _ = db.run_ghost_cleanup().unwrap();
            }
        }
    }
    db.commit(&mut txn).unwrap();
    check_against_model(&db, &pending, min_amount);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn escrow_mode_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::Escrow, 0, ops);
    }

    #[test]
    fn xlock_mode_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::XLock, 0, ops);
    }

    #[test]
    fn filtered_escrow_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::Escrow, 50, ops);
    }
}

// ---- concurrent two-transaction programs through the virtual scheduler ----
//
// Random pairs of transaction scripts run under a *scheduled* interleaving
// (a random decision list replayed through the deterministic scheduler),
// judged by the serializability oracle instead of a sequential model.
// Failures print the scripts + choice list; append them to
// `model_check.proptest-regressions` in the `interleave:` format below and
// `concurrent_regressions_replay` will pin them forever.

use txview_repro::engine::interleave::{self as il, End, SOp, Scenario, Script};

fn arb_cop() -> impl Strategy<Value = SOp> {
    prop_oneof![
        3 => (0i64..6, 0i64..3, 1i64..50)
            .prop_map(|(id, grp, amount)| SOp::Insert { id, grp, amount }),
        2 => (0i64..6, 0i64..3, 1i64..50)
            .prop_map(|(id, grp, amount)| SOp::Update { id, grp, amount }),
        2 => (0i64..6).prop_map(|id| SOp::Delete { id }),
        2 => (0i64..3).prop_map(|grp| SOp::ReadGroup { grp }),
        1 => (0i64..6).prop_map(|id| SOp::ReadRow { id }),
    ]
}

fn arb_cscript() -> impl Strategy<Value = Script> {
    (
        0usize..3,
        proptest::collection::vec(arb_cop(), 1..5),
        0usize..4,
    )
        .prop_map(|(iso, mut ops, end)| {
            let isolation = match iso {
                0 => IsolationLevel::ReadCommitted,
                1 => IsolationLevel::Serializable,
                _ => IsolationLevel::Snapshot,
            };
            if isolation == IsolationLevel::Snapshot {
                // Snapshot transactions are read-only in these programs.
                for op in ops.iter_mut() {
                    if !matches!(op, SOp::ReadGroup { .. } | SOp::ReadRow { .. }) {
                        *op = SOp::ReadGroup { grp: 0 };
                    }
                }
            }
            // Commit three times out of four.
            let end = if end == 0 { End::Rollback } else { End::Commit };
            Script { isolation, ops, end }
        })
}

fn concurrent_scenario(mode: MaintenanceMode, s1: Script, s2: Script) -> Scenario {
    Scenario {
        name: format!("model_check_concurrent/{mode:?}"),
        mode,
        initial: vec![(0, 0, 10), (3, 1, 20)],
        scripts: vec![s1, s2],
        groups: vec![0, 1, 2],
        pipeline: false,
        elr: false,
        minmax: false,
        chain_depth: 0,
    }
}

fn run_concurrent(mode: MaintenanceMode, s1: Script, s2: Script, choices: Vec<usize>) {
    let sc = concurrent_scenario(mode, s1, s2);
    let ep = il::run_episode(&sc, Box::new(il::ReplayChooser::new(choices.clone())));
    let violations = il::check_episode(&sc, &ep);
    assert!(
        violations.is_empty(),
        "oracle violations for scripts {:?} under choices {choices:?} \
         (executed decisions {:?}):\n{}",
        sc.scripts,
        ep.decisions,
        violations.join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_escrow_passes_oracle(
        s1 in arb_cscript(),
        s2 in arb_cscript(),
        choices in proptest::collection::vec(0usize..2, 0..24),
    ) {
        run_concurrent(MaintenanceMode::Escrow, s1, s2, choices);
    }

    #[test]
    fn concurrent_xlock_passes_oracle(
        s1 in arb_cscript(),
        s2 in arb_cscript(),
        choices in proptest::collection::vec(0usize..2, 0..24),
    ) {
        run_concurrent(MaintenanceMode::XLock, s1, s2, choices);
    }
}

/// Parse one script in the regression format `ISO;op,op,...;END` where an
/// op is `I:id:grp:amt`, `U:id:grp:amt`, `D:id`, `R:grp`, or `B:id`,
/// ISO is `RC|SR|SN`, END is `C|A`.
fn parse_regression_script(s: &str) -> Script {
    let parts: Vec<&str> = s.split(';').collect();
    assert_eq!(parts.len(), 3, "bad regression script {s:?}");
    let isolation = match parts[0] {
        "RC" => IsolationLevel::ReadCommitted,
        "SR" => IsolationLevel::Serializable,
        "SN" => IsolationLevel::Snapshot,
        other => panic!("bad isolation {other:?}"),
    };
    let num = |f: &str| f.parse::<i64>().expect("regression op field");
    let ops = parts[1]
        .split(',')
        .filter(|o| !o.is_empty())
        .map(|o| {
            let f: Vec<&str> = o.split(':').collect();
            match f[0] {
                "I" => SOp::Insert { id: num(f[1]), grp: num(f[2]), amount: num(f[3]) },
                "U" => SOp::Update { id: num(f[1]), grp: num(f[2]), amount: num(f[3]) },
                "D" => SOp::Delete { id: num(f[1]) },
                "R" => SOp::ReadGroup { grp: num(f[1]) },
                "B" => SOp::ReadRow { id: num(f[1]) },
                other => panic!("bad op tag {other:?}"),
            }
        })
        .collect();
    let end = match parts[2] {
        "C" => End::Commit,
        "A" => End::Rollback,
        other => panic!("bad end {other:?}"),
    };
    Script { isolation, ops, end }
}

/// Replay every `interleave:` regression recorded in
/// `model_check.proptest-regressions`. The shim never shrinks or persists
/// cases itself, so failing concurrent programs are minimized by hand and
/// committed there in the compact format parsed above.
#[test]
fn concurrent_regressions_replay() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/model_check.proptest-regressions");
    let text = std::fs::read_to_string(path).expect("regressions file");
    let mut replayed = 0usize;
    for line in text.lines() {
        let Some(spec) = line.strip_prefix("cc interleave: ") else { continue };
        let mut mode = None;
        let mut scripts = Vec::new();
        let mut choices: Vec<usize> = Vec::new();
        for field in spec.split_whitespace() {
            let (key, val) = field.split_once('=').expect("key=value regression field");
            match key {
                "mode" => {
                    mode = Some(match val {
                        "escrow" => MaintenanceMode::Escrow,
                        "xlock" => MaintenanceMode::XLock,
                        other => panic!("bad mode {other:?}"),
                    })
                }
                "t1" | "t2" => scripts.push(parse_regression_script(val)),
                "choices" => {
                    choices = val
                        .split(',')
                        .filter(|c| !c.is_empty() && *c != "-")
                        .map(|c| c.parse().expect("choice"))
                        .collect()
                }
                other => panic!("bad regression key {other:?}"),
            }
        }
        assert_eq!(scripts.len(), 2, "regression needs t1 and t2: {line:?}");
        let s2 = scripts.pop().unwrap();
        let s1 = scripts.pop().unwrap();
        run_concurrent(mode.expect("mode"), s1, s2, choices);
        replayed += 1;
    }
    assert!(replayed > 0, "no interleave regressions found in {path}");
}
