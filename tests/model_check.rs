//! Property-based model checking: random DML programs (with rollbacks,
//! savepoints, filters, and crashes) against a pure in-memory model. After
//! every program, the table contents, the view contents, and the engine's
//! own `verify_view` must all agree with the model.

use proptest::prelude::*;
use std::collections::HashMap;
use txview_repro::prelude::*;
use txview_repro::row;

/// The reference model: pk → (group, amount).
type Model = HashMap<i64, (i64, i64)>;

#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, grp: i64, amount: i64 },
    Update { id: i64, grp: i64, amount: i64 },
    Delete { id: i64 },
    Commit,
    Rollback,
    SavepointRoundtrip { id: i64, grp: i64, amount: i64 },
    Crash { steal_milli: u16, seed: u64 },
    Cleanup,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..40, 0i64..4, 1i64..100).prop_map(|(id, grp, amount)| Op::Insert { id, grp, amount }),
        3 => (0i64..40, 0i64..4, 1i64..100).prop_map(|(id, grp, amount)| Op::Update { id, grp, amount }),
        3 => (0i64..40).prop_map(|id| Op::Delete { id }),
        3 => Just(Op::Commit),
        1 => Just(Op::Rollback),
        1 => (100i64..140, 0i64..4, 1i64..100)
            .prop_map(|(id, grp, amount)| Op::SavepointRoundtrip { id, grp, amount }),
        1 => (0u16..1000, any::<u64>()).prop_map(|(steal_milli, seed)| Op::Crash { steal_milli, seed }),
        1 => Just(Op::Cleanup),
    ]
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn setup(mode: MaintenanceMode, filter: Predicate) -> std::sync::Arc<Database> {
    let db = Database::new_in_memory(512);
    let t = db.create_table("items", schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "v".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter,
        maintenance: mode,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    db
}

/// Expected view contents from the model (only rows passing `min_amount`).
fn expected_view(model: &Model, min_amount: i64) -> HashMap<i64, (i64, i64)> {
    let mut out: HashMap<i64, (i64, i64)> = HashMap::new();
    for (_, (grp, amount)) in model.iter() {
        if *amount >= min_amount {
            let e = out.entry(*grp).or_insert((0, 0));
            e.0 += 1;
            e.1 += amount;
        }
    }
    out
}

fn check_against_model(db: &Database, model: &Model, min_amount: i64) {
    // Engine's own invariant first.
    db.verify_view("v").unwrap();
    // Table contents.
    let rows = db.dump_table("items").unwrap();
    assert_eq!(rows.len(), model.len(), "table cardinality");
    for r in &rows {
        let id = r.get(0).as_int().unwrap();
        let (grp, amount) = model.get(&id).expect("row must exist in model");
        assert_eq!(r.get(1).as_int().unwrap(), *grp);
        assert_eq!(r.get(2).as_int().unwrap(), *amount);
    }
    // View contents.
    let expected = expected_view(model, min_amount);
    let view_rows = db.dump_view("v").unwrap();
    assert_eq!(view_rows.len(), expected.len(), "view cardinality");
    for r in &view_rows {
        let grp = r.get(0).as_int().unwrap();
        let (count, sum) = expected.get(&grp).expect("group must exist in model");
        assert_eq!(r.get(1).as_int().unwrap(), *count, "count of group {grp}");
        assert_eq!(r.get(2).as_int().unwrap(), *sum, "sum of group {grp}");
    }
}

fn run_program(mode: MaintenanceMode, min_amount: i64, ops: Vec<Op>) {
    let filter = if min_amount > 0 {
        Predicate::Cmp { col: 2, op: CmpOp::Ge, value: Value::Int(min_amount) }
    } else {
        Predicate::True
    };
    let db = setup(mode, filter);
    let mut committed: Model = HashMap::new();
    let mut pending: Model = committed.clone();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);

    for op in ops {
        match op {
            Op::Insert { id, grp, amount } => {
                let res = db.insert(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Vacant(e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::DuplicateKey(_))));
                }
            }
            Op::Update { id, grp, amount } => {
                let res = db.update(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Occupied(mut e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Delete { id } => {
                let res = db.delete(&mut txn, "items", &[Value::Int(id)]);
                if pending.contains_key(&id) {
                    res.unwrap();
                    pending.remove(&id);
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Commit => {
                db.commit(&mut txn).unwrap();
                committed = pending.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Rollback => {
                db.rollback(&mut txn).unwrap();
                pending = committed.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::SavepointRoundtrip { id, grp, amount } => {
                // Do work after a savepoint, then roll it back: must be a
                // no-op overall.
                let sp = db.savepoint(&txn);
                if !pending.contains_key(&id) {
                    db.insert(&mut txn, "items", row![id, grp, amount]).unwrap();
                }
                db.rollback_to_savepoint(&mut txn, sp).unwrap();
            }
            Op::Crash { steal_milli, seed } => {
                // Whatever the open transaction did must vanish.
                std::mem::forget(txn);
                db.log().flush_all().unwrap();
                db.crash_and_recover(steal_milli as f64 / 1000.0, seed).unwrap();
                pending = committed.clone();
                check_against_model(&db, &committed, min_amount);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Cleanup => {
                // Ghost cleanup must never change logical contents. Run it
                // between transactions (the open one has made no changes
                // that cleanup could observe under its instant locks).
                let _ = db.run_ghost_cleanup().unwrap();
            }
        }
    }
    db.commit(&mut txn).unwrap();
    check_against_model(&db, &pending, min_amount);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn escrow_mode_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::Escrow, 0, ops);
    }

    #[test]
    fn xlock_mode_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::XLock, 0, ops);
    }

    #[test]
    fn filtered_escrow_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_program(MaintenanceMode::Escrow, 50, ops);
    }
}
