//! Property tests for the fault-injection layer: schedule generation is a
//! pure function of the seed, and a torn page write is always detected by
//! the page checksum on the next read, whatever the payload.

use proptest::prelude::*;
use txview_engine::torture::{run_episode, TortureConfig};
use txview_common::Error;
use txview_storage::fault::{FaultClock, FaultDisk, FaultKind, FaultSchedule};
use txview_storage::{DiskManager, Page, PageType, PAGE_PAYLOAD_SIZE};

proptest! {
    /// Same seed + horizon ⇒ byte-identical fault schedule, every time.
    #[test]
    fn schedule_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        horizon in 1u64..10_000,
    ) {
        let a = FaultSchedule::random(seed, horizon);
        let b = FaultSchedule::random(seed, horizon);
        prop_assert_eq!(&a, &b);
        // Well-formed: sorted by event, unique events, everything inside
        // the horizon, and nothing scheduled after the crash.
        let events: Vec<u64> = a.faults.iter().map(|(e, _)| *e).collect();
        let mut sorted = events.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&events, &sorted);
        prop_assert!(events.iter().all(|&e| e < horizon));
        if let Some(pos) =
            a.faults.iter().position(|(_, k)| *k == FaultKind::Crash)
        {
            prop_assert_eq!(pos, a.faults.len() - 1, "crash must be last");
        }
    }

    /// A torn write is always caught by the checksum on read, for any
    /// payload bytes written at any offset.
    #[test]
    fn torn_writes_never_pass_the_checksum(
        bytes in proptest::collection::vec(any::<u8>(), 1..256),
        offset in 0usize..PAGE_PAYLOAD_SIZE - 256,
    ) {
        let clock = FaultClock::new();
        let disk = FaultDisk::new(std::sync::Arc::clone(&clock));
        let pid = disk.allocate().unwrap();
        let mut page = Page::new(PageType::BTreeLeaf);
        page.payload_mut()[offset..offset + bytes.len()].copy_from_slice(&bytes);
        // Tear the very next disk write.
        clock.arm(&FaultSchedule { faults: vec![(0, FaultKind::TornWrite)] });
        disk.write_page(pid, &mut page).unwrap();
        prop_assert!(
            matches!(disk.read_page(pid), Err(Error::Corruption(_))),
            "torn write went undetected"
        );
        prop_assert_eq!(clock.stats().torn_writes, 1);
    }

    /// Storm schedules are pure functions of the seed and always
    /// transient-only with bounded consecutive runs (≤ 3, strictly inside
    /// the 5-attempt retry budget).
    #[test]
    fn storm_schedules_are_pure_and_transient_only(
        seed in any::<u64>(),
        horizon in 1u64..5_000,
    ) {
        let a = FaultSchedule::storm(seed, horizon);
        let b = FaultSchedule::storm(seed, horizon);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.is_transient_only());
        let events: Vec<u64> = a.faults.iter().map(|(e, _)| *e).collect();
        prop_assert!(events.iter().all(|&e| e < horizon));
        let mut run = 1u32;
        for w in events.windows(2) {
            run = if w[1] == w[0] + 1 { run + 1 } else { 1 };
            prop_assert!(run <= 3, "consecutive fault run exceeds the retry budget");
        }
    }

    /// The resilience layer is *transparent*: any transient-only schedule
    /// leaves the committed state byte-identical to the fault-free run of
    /// the same seed, with the same acknowledged commits and no
    /// degradation (satellite oracle of the storm mode).
    #[test]
    fn transient_storms_preserve_committed_state(
        seed in any::<u32>(),
        storm_seed in any::<u64>(),
    ) {
        let cfg = TortureConfig { txns: 10, seed: seed as u64, ..Default::default() };
        let horizon = txview_engine::torture::measure_horizon(&cfg).unwrap();
        let schedule = FaultSchedule::storm(storm_seed, horizon);
        // An empty storm (rare seeds) is trivially absorbed; skip it.
        if !schedule.faults.is_empty() {
            let ep = txview_engine::torture::run_storm_episode(&cfg, &schedule).unwrap();
            prop_assert!(ep.violations.is_empty(), "storm not absorbed: {:?}", ep.violations);
            prop_assert_eq!(ep.resilience.health, txview_engine::HealthState::Healthy);
        }
    }

    /// Torture episodes are deterministic: same seed + crash point ⇒ same
    /// workload trace, same crash event, same oracle outcome.
    #[test]
    fn episodes_replay_bit_identically(seed in any::<u32>(), point in 0u64..80) {
        let cfg = TortureConfig { txns: 8, seed: seed as u64, ..Default::default() };
        let schedule = FaultSchedule::crash_at(point);
        let a = run_episode(&cfg, &schedule).unwrap();
        let b = run_episode(&cfg, &schedule).unwrap();
        prop_assert_eq!(a.crash_event, b.crash_event);
        prop_assert_eq!(a.trace.acked_commits, b.trace.acked_commits);
        prop_assert_eq!(a.trace.acked_transfers, b.trace.acked_transfers);
        prop_assert_eq!(a.fault_stats.events, b.fault_stats.events);
        prop_assert_eq!(&a.violations, &b.violations);
        prop_assert!(a.violations.is_empty(), "oracle violation: {:?}", a.violations);
    }
}
