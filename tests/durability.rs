//! End-to-end durability: a file-backed database survives process
//! "restarts" (drop + reopen) with WAL recovery and catalog reload.

use std::time::Duration;
use txview_repro::prelude::*;
use txview_repro::row;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("txview-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

#[test]
fn reopen_recovers_committed_state_and_catalog() {
    let dir = fresh_dir("reopen");
    {
        let (db, _) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        let t = db.create_table("orders", schema()).unwrap();
        db.create_indexed_view(ViewSpec {
            name: "by_grp".into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .unwrap();
        db.create_index("orders_by_grp", "orders", &[1], false).unwrap();
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..50i64 {
            db.insert(&mut txn, "orders", row![i, i % 5, 10i64]).unwrap();
        }
        db.commit(&mut txn).unwrap();
        // One loser in flight at "process exit".
        let mut loser = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut loser, "orders", row![999i64, 0i64, 12345i64]).unwrap();
        // Force the loser's records to disk (as a page steal would), so
        // recovery must actively undo it rather than never see it.
        db.log().flush_all().unwrap();
        std::mem::forget(loser);
        // NO checkpoint: the drop models a hard kill.
    }
    {
        let (db, report) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        assert!(report.redo_applied > 0, "recovery redid committed work");
        assert_eq!(report.losers, 1, "the in-flight txn was undone");
        db.verify_view("by_grp").unwrap();
        db.verify_index("orders_by_grp").unwrap();
        let rows = db.dump_table("orders").unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() != 999));

        // The reopened database is fully usable.
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        db.insert(&mut txn, "orders", row![100i64, 2i64, 7i64]).unwrap();
        db.commit(&mut txn).unwrap();
        db.verify_view("by_grp").unwrap();
    }
    {
        // Third open: everything still there, recovery idempotent, and the
        // secondary index answers queries.
        let (db, _) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        db.verify_view("by_grp").unwrap();
        db.verify_index("orders_by_grp").unwrap();
        assert_eq!(db.dump_table("orders").unwrap().len(), 51);
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        let grp2 = db.get_by_index(&mut txn, "orders_by_grp", &[Value::Int(2)]).unwrap();
        assert_eq!(grp2.len(), 11);
        db.commit(&mut txn).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_after_heavy_load_with_splits() {
    let dir = fresh_dir("splits");
    {
        let (db, _) = Database::open_dir(&dir, 512, Duration::from_secs(5)).unwrap();
        let t = db.create_table("orders", schema()).unwrap();
        db.create_indexed_view(ViewSpec {
            name: "by_grp".into(),
            source: ViewSource::Single { table: t, group_by: vec![1] },
            aggs: vec![AggSpec::SumInt { col: 2 }],
            filter: Predicate::True,
            maintenance: MaintenanceMode::Escrow,
            deferred: false,
            eager_group_delete: false,
        })
        .unwrap();
        // Enough rows to force many leaf splits (system transactions whose
        // effects must survive even though no user checkpoint follows).
        for batch in 0..20i64 {
            let mut txn = db.begin(IsolationLevel::ReadCommitted);
            for i in 0..100i64 {
                let id = batch * 100 + i;
                db.insert(&mut txn, "orders", row![id, id % 50, 1i64]).unwrap();
            }
            db.commit(&mut txn).unwrap();
        }
    }
    {
        let (db, report) = Database::open_dir(&dir, 512, Duration::from_secs(5)).unwrap();
        assert_eq!(report.losers, 0);
        db.verify_view("by_grp").unwrap();
        assert_eq!(db.dump_table("orders").unwrap().len(), 2000);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_shrinks_recovery_work() {
    let dir = fresh_dir("ckpt");
    let analysis_without;
    let analysis_with;
    {
        let (db, _) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        db.create_table("orders", schema()).unwrap();
        let mut txn = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..500i64 {
            db.insert(&mut txn, "orders", row![i, 0i64, 1i64]).unwrap();
        }
        db.commit(&mut txn).unwrap();
    }
    {
        let (db, report) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        analysis_without = report.analysis_records;
        // Now checkpoint: the next recovery should scan far less.
        db.pool().flush_all().unwrap();
        db.checkpoint().unwrap();
    }
    {
        let (_db, report) = Database::open_dir(&dir, 256, Duration::from_secs(5)).unwrap();
        analysis_with = report.analysis_records;
    }
    assert!(
        analysis_with < analysis_without / 10,
        "checkpoint bounds analysis: {analysis_with} vs {analysis_without}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
