//! Differential property tests for the view-dependency DAG: random view
//! graphs (≤ 4 levels over the base view) × random delta streams, judged
//! against a naive recompute-every-view reference model.
//!
//! Three claims per program:
//!
//! 1. **Byte-identical finals** — every view's `dump_view` output equals
//!    the naive model's recomputation, and a *coalesced* run equals an
//!    *eager* run (cascade applied at op time) row for row.
//! 2. **Exactly-once refresh** — in the coalesced run, each committing
//!    transaction refreshes each dirty (view, group) exactly once, however
//!    many deltas it produced (asserted on the engine's cascade trace).
//! 3. **Engine invariants** — `verify_view` (recompute from base) and
//!    `verify_view_from_parent` (one-level fold of the immediate parent)
//!    pass for every view, including after crash recovery mid-stream.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use txview_repro::prelude::*;
use txview_repro::row;

/// One derived node of the random DAG: parent index (0 = the base view
/// `v0`, `i+1` = the i-th derived view) and whether it is a global rollup
/// (empty `group_by`) or an identity level (`group_by [0]`).
#[derive(Clone, Copy, Debug)]
struct Node {
    parent: usize,
    global: bool,
}

#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, grp: i64, amount: i64 },
    Update { id: i64, grp: i64, amount: i64 },
    Delete { id: i64 },
    Commit,
    Rollback,
    Crash { seed: u64 },
}

fn arb_node() -> impl Strategy<Value = (u8, bool)> {
    (any::<u8>(), any::<bool>())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..24, 0i64..4, 1i64..100)
            .prop_map(|(id, grp, amount)| Op::Insert { id, grp, amount }),
        3 => (0i64..24, 0i64..4, 1i64..100)
            .prop_map(|(id, grp, amount)| Op::Update { id, grp, amount }),
        2 => (0i64..24).prop_map(|id| Op::Delete { id }),
        3 => Just(Op::Commit),
        1 => Just(Op::Rollback),
        1 => any::<u64>().prop_map(|seed| Op::Crash { seed }),
    ]
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("grp", ValueType::Int),
            Column::new("amount", ValueType::Int),
        ],
        vec![0],
    )
    .unwrap()
}

fn view_name(idx: usize) -> String {
    if idx == 0 { "v0".into() } else { format!("d{idx}") }
}

/// Resolve raw strategy output into a DAG capped at 4 levels: node `i`'s
/// parent is drawn from the views that exist before it, reparented to the
/// base view whenever the draw would exceed the depth cap.
fn resolve_dag(raw: &[(u8, bool)]) -> Vec<Node> {
    let mut levels = vec![0usize]; // v0
    let mut nodes = Vec::with_capacity(raw.len());
    for (i, &(pseed, global)) in raw.iter().enumerate() {
        let mut parent = (pseed as usize) % (i + 1);
        if levels[parent] >= 3 {
            parent = 0;
        }
        levels.push(levels[parent] + 1);
        nodes.push(Node { parent, global });
    }
    nodes
}

fn build_db(dag: &[Node]) -> std::sync::Arc<Database> {
    let db = Database::new_in_memory(512);
    let t = db.create_table("items", schema()).unwrap();
    db.create_indexed_view(ViewSpec {
        name: "v0".into(),
        source: ViewSource::Single { table: t, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })
    .unwrap();
    for (i, n) in dag.iter().enumerate() {
        let group_by = if n.global { vec![] } else { vec![0] };
        db.create_derived_view(
            &view_name(i + 1),
            &view_name(n.parent),
            group_by,
            vec![AggSpec::SumInt { col: 2 }],
            MaintenanceMode::Escrow,
        )
        .unwrap();
    }
    db
}

/// The naive reference: recompute every view bottom-up from the base
/// model. Every view in these DAGs stores one group column, so a view's
/// contents are `key → (count, sum)`; ghost groups (count 0) are absent.
fn naive_views(dag: &[Node], model: &HashMap<i64, (i64, i64)>) -> Vec<BTreeMap<i64, (i64, i64)>> {
    let mut views: Vec<BTreeMap<i64, (i64, i64)>> = Vec::with_capacity(dag.len() + 1);
    let mut v0 = BTreeMap::new();
    for (_, (grp, amount)) in model {
        let e = v0.entry(*grp).or_insert((0i64, 0i64));
        e.0 += 1;
        e.1 += amount;
    }
    views.push(v0);
    for n in dag {
        let parent = &views[n.parent];
        let view = if n.global {
            let (mut c, mut s) = (0i64, 0i64);
            for (pc, ps) in parent.values() {
                c += pc;
                s += ps;
            }
            if c > 0 { BTreeMap::from([(0, (c, s))]) } else { BTreeMap::new() }
        } else {
            parent.clone()
        };
        views.push(view);
    }
    views
}

fn dump(db: &Database, idx: usize) -> BTreeMap<i64, (i64, i64)> {
    db.dump_view(&view_name(idx))
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.get(0).as_int().unwrap(),
                (r.get(1).as_int().unwrap(), r.get(2).as_int().unwrap()),
            )
        })
        .collect()
}

fn check_all(dag: &[Node], db: &Database, model: &HashMap<i64, (i64, i64)>, label: &str) {
    let expected = naive_views(dag, model);
    for idx in 0..=dag.len() {
        let name = view_name(idx);
        db.verify_view(&name).unwrap_or_else(|e| panic!("[{label}] verify {name}: {e}"));
        db.verify_view_from_parent(&name)
            .unwrap_or_else(|e| panic!("[{label}] parent-fold {name}: {e}"));
        let got = dump(db, idx);
        assert_eq!(got, expected[idx], "[{label}] {name} diverged from naive recomputation");
    }
}

/// Drive the same op stream through `db`, mirroring it into a committed /
/// pending model pair; checks every view at each quiesced point.
fn run_stream(
    dag: &[Node],
    db: &std::sync::Arc<Database>,
    ops: &[Op],
    label: &str,
) -> HashMap<i64, (i64, i64)> {
    let mut committed: HashMap<i64, (i64, i64)> = HashMap::new();
    let mut pending = committed.clone();
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for op in ops {
        match *op {
            Op::Insert { id, grp, amount } => {
                let res = db.insert(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Vacant(e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::DuplicateKey(_))));
                }
            }
            Op::Update { id, grp, amount } => {
                let res = db.update(&mut txn, "items", row![id, grp, amount]);
                if let std::collections::hash_map::Entry::Occupied(mut e) = pending.entry(id) {
                    res.unwrap();
                    e.insert((grp, amount));
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Delete { id } => {
                let res = db.delete(&mut txn, "items", &[Value::Int(id)]);
                if pending.contains_key(&id) {
                    res.unwrap();
                    pending.remove(&id);
                } else {
                    assert!(matches!(res, Err(Error::NotFound(_))));
                }
            }
            Op::Commit => {
                db.commit(&mut txn).unwrap();
                committed = pending.clone();
                check_all(dag, db, &committed, label);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Rollback => {
                db.rollback(&mut txn).unwrap();
                pending = committed.clone();
                check_all(dag, db, &committed, label);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
            Op::Crash { seed } => {
                // The open transaction's work — including its queued
                // cascades — must vanish.
                std::mem::forget(txn);
                db.log().flush_all().unwrap();
                db.crash_and_recover(0.5, seed).unwrap();
                pending = committed.clone();
                check_all(dag, db, &committed, label);
                txn = db.begin(IsolationLevel::ReadCommitted);
            }
        }
    }
    db.commit(&mut txn).unwrap();
    check_all(dag, db, &pending, label);
    pending
}

fn run_differential(raw_dag: Vec<(u8, bool)>, ops: Vec<Op>) {
    let dag = resolve_dag(&raw_dag);

    // Coalesced run (the default), with the refresh trace on.
    let db = build_db(&dag);
    db.enable_cascade_trace();
    let final_model = run_stream(&dag, &db, &ops, "coalesced");

    // Exactly-once refresh: each committing transaction touches each dirty
    // (view, group) exactly once.
    let trace = db.take_cascade_trace();
    let mut seen: HashMap<(u64, u32, Vec<u8>), usize> = HashMap::new();
    for (txn, view, key) in &trace {
        *seen.entry((txn.0, view.0, key.clone())).or_insert(0) += 1;
    }
    for ((txn, view, key), n) in &seen {
        assert_eq!(
            *n, 1,
            "txn {txn} refreshed view {view} group {key:?} {n} times (must be exactly once)"
        );
    }

    // Eager run: the cascade applies at op time instead of commit time.
    // Same ops, same final bytes, same invariants — only the refresh
    // counts may differ (one per delta instead of one per group).
    let eager = build_db(&dag);
    eager.set_cascade_eager(true);
    let eager_model = run_stream(&dag, &eager, &ops, "eager");
    assert_eq!(final_model, eager_model, "model divergence between runs");
    for idx in 0..=dag.len() {
        let a = db.dump_view(&view_name(idx)).unwrap();
        let b = eager.dump_view(&view_name(idx)).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "coalesced and eager runs diverge on {}",
            view_name(idx)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_dags_match_naive_reference(
        raw_dag in proptest::collection::vec(arb_node(), 1..6),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        run_differential(raw_dag, ops);
    }
}

/// Deterministic pin: a 4-deep linear chain with a fan-out sibling, one
/// transaction producing many deltas per group — the coalescing queue must
/// still refresh each (view, group) once, and a savepoint rollback inside
/// the transaction must retract its queued share.
#[test]
fn deep_chain_coalesces_to_one_refresh_per_group() {
    let dag = resolve_dag(&[(0, false), (1, false), (2, true), (0, true)]);
    let db = build_db(&dag);
    db.enable_cascade_trace();

    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for id in 0..8 {
        db.insert(&mut txn, "items", row![id, id % 2, 10 + id]).unwrap();
    }
    // Savepoint round-trip: queued cascade deltas of the rolled-back span
    // must be retracted, not flushed.
    let sp = db.savepoint(&txn);
    db.insert(&mut txn, "items", row![100, 3, 1000]).unwrap();
    db.rollback_to_savepoint(&mut txn, sp).unwrap();
    db.commit(&mut txn).unwrap();

    let trace = db.take_cascade_trace();
    let mut per_view_groups: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    let mut counts: HashMap<(u64, u32, Vec<u8>), usize> = HashMap::new();
    for (txn, view, key) in &trace {
        *counts.entry((txn.0, view.0, key.clone())).or_insert(0) += 1;
        per_view_groups.entry(view.0).or_default().push(key.clone());
    }
    assert!(counts.values().all(|&n| n == 1), "duplicate refresh: {counts:?}");
    // 8 inserts over 2 groups through 4 derived views: identity levels
    // refresh 2 groups each, globals refresh 1 — never 8.
    assert_eq!(per_view_groups.len(), 4, "all four derived views refreshed");
    for (view, groups) in &per_view_groups {
        assert!(
            groups.len() <= 2,
            "view {view} refreshed {} groups — coalescing failed",
            groups.len()
        );
    }
    // And the rolled-back group 3 must not appear anywhere.
    let model: HashMap<i64, (i64, i64)> =
        (0..8).map(|id| (id, (id % 2, 10 + id))).collect();
    check_all(&dag, &db, &model, "pinned");
}
