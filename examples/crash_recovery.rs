//! Crash-recovery torture, narrated: run concurrent maintenance, crash at
//! a random point with in-flight transactions, recover, verify — ten times
//! in a row on the same database.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use std::time::Duration;
use txview_common::{row, Value};
use txview_engine::{IsolationLevel, MaintenanceMode};
use txview_workload::bank::{Bank, BankConfig, VIEW};
use txview_workload::driver::{run_for, WorkerSpec};

fn main() {
    let bank = Bank::setup(BankConfig {
        accounts: 2048,
        branches: 8,
        mode: MaintenanceMode::Escrow,
        ..Default::default()
    })
    .expect("setup");
    let db = &bank.db;

    for round in 1..=10u64 {
        // Concurrent committed work.
        let specs = [WorkerSpec {
            name: "writers".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: bank.transfer_op(2),
        }];
        let res = run_for(db, &specs, Duration::from_millis(200));

        // Checkpoint every other round (recovery must work with and
        // without a recent checkpoint).
        if round % 2 == 0 {
            db.checkpoint().expect("checkpoint");
        }

        // Leave three transactions in flight — they must be undone.
        for k in 0..3i64 {
            let mut loser = db.begin(IsolationLevel::ReadCommitted);
            db.update_with(&mut loser, "accounts", &[Value::Int(k)], |r| {
                let mut out = r.clone();
                out.set(2, Value::Int(-999_999));
                out
            })
            .expect("loser op");
            db.insert(&mut loser, "accounts", row![1_000_000 + round as i64 * 10 + k, 0i64, 1i64])
                .expect("loser insert");
            std::mem::forget(loser);
        }

        // Crash with a random steal fraction and recover.
        let steal = (round as f64) / 10.0;
        let report = db.crash_and_recover(steal, round).expect("recovery");
        bank.verify().expect("view == recomputation from base");

        println!(
            "round {round:>2}: {:>6} commits, crash(steal={steal:.1}) -> \
             analysis {:>5} redo {:>5} undo {:>3} losers {:>2} ... view verified ✓",
            res[0].committed,
            report.analysis_records,
            report.redo_applied,
            report.logical_undos,
            report.losers,
        );
    }

    // The money invariant held through all ten crashes.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    let rows = db.view_scan(&mut txn, VIEW, None, None).expect("scan");
    let total: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
    db.commit(&mut txn).expect("commit");
    assert_eq!(total, bank.total_money());
    println!("\ntotal money after 10 crashes: {total} (exactly as loaded) ✓");
}
