//! The paper's headline effect, live: concurrent transactions funnel into
//! 8 hot view rows. Escrow locking lets them increment the same rows
//! simultaneously; the X-lock baseline serializes them.
//!
//! ```text
//! cargo run --release --example bank_contention
//! ```

use std::time::Duration;
use txview_engine::{IsolationLevel, MaintenanceMode};
use txview_workload::bank::{Bank, BankConfig};
use txview_workload::driver::{run_for, WorkerSpec};

fn main() {
    let threads = 8;
    println!("{threads} writer threads, 8 branches, 4-update transactions\n");
    for mode in [MaintenanceMode::Escrow, MaintenanceMode::XLock] {
        let bank = Bank::setup(BankConfig { mode, ..Default::default() }).expect("setup");
        let specs = [WorkerSpec {
            name: "writers".into(),
            threads,
            isolation: IsolationLevel::ReadCommitted,
            op: bank.batch_deposit_op(4),
        }];
        let res = run_for(&bank.db, &specs, Duration::from_secs(2));
        bank.verify().expect("view consistent");
        let stats = bank.db.stats();
        println!(
            "{mode:?}: {:>8.0} txns/s   deadlocks {}   lock waits {}   escrow grants {}",
            res[0].throughput(),
            res[0].deadlocks,
            stats.locks.waited,
            stats.locks.escrow_grants,
        );
    }
    println!("\nBoth runs verified exactly against a recomputation from base.");
}
