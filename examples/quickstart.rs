//! Quickstart: create a table and an indexed view, run transactions,
//! watch the view stay transactionally consistent — including through a
//! rollback and a simulated crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use txview_repro::prelude::*;
use txview_repro::row;

fn main() -> Result<()> {
    // An in-memory database: MemDisk + in-memory WAL (a FileDisk/FileLog
    // variant exists via Database::with_parts).
    let db = Database::new_in_memory(1024);

    // accounts(id INT PK, branch INT, balance INT)
    let accounts = db.create_table(
        "accounts",
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("branch", ValueType::Int),
                Column::new("balance", ValueType::Int),
            ],
            vec![0],
        )?,
    )?;

    // CREATE VIEW branch_balance AS
    //   SELECT branch, COUNT_BIG(*), SUM(balance) FROM accounts GROUP BY branch
    // ... maintained immediately, with escrow locking (the paper's protocol).
    db.create_indexed_view(ViewSpec {
        name: "branch_balance".into(),
        source: ViewSource::Single { table: accounts, group_by: vec![1] },
        aggs: vec![AggSpec::SumInt { col: 2 }],
        filter: Predicate::True,
        maintenance: MaintenanceMode::Escrow,
        deferred: false,
        eager_group_delete: false,
    })?;

    // Insert some accounts in one transaction.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    for i in 0..10i64 {
        db.insert(&mut txn, "accounts", row![i, i % 3, 100i64])?;
    }
    db.commit(&mut txn)?;

    // Read the view.
    let mut reader = db.begin(IsolationLevel::ReadCommitted);
    println!("branch totals after load:");
    for r in db.view_scan(&mut reader, "branch_balance", None, None)? {
        println!("  branch {} -> count {}, sum {}", r.get(0), r.get(1), r.get(2));
    }
    db.commit(&mut reader)?;

    // A transaction that rolls back leaves no trace in the view.
    let mut txn = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut txn, "accounts", row![99i64, 0i64, 1_000_000i64])?;
    db.rollback(&mut txn)?;
    db.verify_view("branch_balance")?;
    println!("rollback left the view consistent ✓");

    // Crash with an in-flight transaction; ARIES recovery repairs
    // everything (redo committed work, logically undo the loser).
    let mut loser = db.begin(IsolationLevel::ReadCommitted);
    db.insert(&mut loser, "accounts", row![500i64, 1i64, 777i64])?;
    std::mem::forget(loser);
    let report = db.crash_and_recover(0.5, 42)?;
    println!(
        "recovered: {} redo ops applied, {} loser txn(s), {} logical undo(s)",
        report.redo_applied, report.losers, report.logical_undos
    );
    db.verify_view("branch_balance")?;
    println!("post-crash view verified against base ✓");

    Ok(())
}
