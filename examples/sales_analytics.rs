//! A small analytics scenario: a sales fact table with a per-product view
//! and a join view aggregating revenue by store region, queried at three
//! isolation levels while writers keep inserting.
//!
//! ```text
//! cargo run --release --example sales_analytics
//! ```

use std::sync::Arc;
use std::time::Duration;
use txview_common::Value;
use txview_engine::IsolationLevel;
use txview_workload::driver::{run_for, WorkerSpec};
use txview_workload::sales::{Sales, SalesConfig, REGIONS};

fn main() {
    let sales = Sales::setup(SalesConfig {
        n_views: 1,
        join_view: true,
        n_stores: 32,
        n_products: 64,
        ..Default::default()
    })
    .expect("setup");

    // Writers insert sales; a snapshot reader watches regional revenue
    // without ever blocking them.
    let specs = [
        WorkerSpec {
            name: "insert".into(),
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op: sales.insert_sale_op(),
        },
        WorkerSpec {
            name: "regional report".into(),
            threads: 1,
            isolation: IsolationLevel::Snapshot,
            op: {
                let _ = &sales;
                Arc::new(move |db, txn, _rng, _seq| {
                    let _rows = db.view_scan(txn, "revenue_by_region", None, None)?;
                    Ok(())
                })
            },
        },
    ];
    let res = run_for(&sales.db, &specs, Duration::from_secs(2));
    println!(
        "inserts: {:.0}/s   snapshot reports: {:.0}/s (never blocked)",
        res[0].throughput(),
        res[1].throughput()
    );

    sales.verify().expect("all views consistent");

    // Final report.
    let mut txn = sales.db.begin(IsolationLevel::Serializable);
    println!("\nrevenue by region (serializable, exact):");
    for region in REGIONS {
        if let Some((count, aggs)) = sales
            .db
            .view_aggregates(&mut txn, "revenue_by_region", &[Value::Str(region.into())])
            .expect("lookup")
        {
            println!("  {region:>6}: {count:>7} sales, revenue {}", aggs[0]);
        }
    }
    sales.db.commit(&mut txn).expect("commit");

    // Top product by ID order, just to exercise the product view too.
    let mut txn = sales.db.begin(IsolationLevel::ReadCommitted);
    let rows = sales
        .db
        .view_scan(&mut txn, "sales_by_product_0", None, None)
        .expect("scan");
    let best = rows
        .iter()
        .max_by_key(|r| r.get(2).as_int().unwrap())
        .expect("some product");
    println!(
        "\nbest-selling product: #{} with revenue {}",
        best.get(0),
        best.get(2)
    );
    sales.db.commit(&mut txn).expect("commit");
}
