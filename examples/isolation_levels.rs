//! The reader's dilemma, live: scan an aggregate view while escrow writers
//! hammer it, at each isolation level. Serializable is exact but slow;
//! read-committed is fast but wrong; snapshot is fast AND exact.
//!
//! ```text
//! cargo run --release --example isolation_levels
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txview_engine::IsolationLevel;
use txview_workload::bank::{Bank, BankConfig};
use txview_workload::driver::{run_for, WorkerSpec};

fn main() {
    println!("8 transfer writers vs 2 auditors; an 'anomaly' is an audit whose");
    println!("view SUM violates money conservation — an exact error detector.\n");
    println!(
        "{:>16}  {:>14}  {:>12}  {:>10}  {:>9}",
        "reader isolation", "writer txns/s", "reader scans/s", "mean ms", "anomalies"
    );
    for (name, iso) in [
        ("serializable", IsolationLevel::Serializable),
        ("read-committed", IsolationLevel::ReadCommitted),
        ("snapshot", IsolationLevel::Snapshot),
    ] {
        let bank = Bank::setup(BankConfig::default()).expect("setup");
        let anomalies = Arc::new(AtomicU64::new(0));
        let specs = [
            WorkerSpec {
                name: "writers".into(),
                threads: 8,
                isolation: IsolationLevel::ReadCommitted,
                op: bank.transfer_op(2),
            },
            WorkerSpec {
                name: "auditors".into(),
                threads: 2,
                isolation: iso,
                op: bank.audit_op(Arc::clone(&anomalies)),
            },
        ];
        let res = run_for(&bank.db, &specs, Duration::from_secs(2));
        bank.verify().expect("view consistent");
        println!(
            "{:>16}  {:>14.0}  {:>12.0}  {:>10.2}  {:>9}",
            name,
            res[0].throughput(),
            res[1].throughput(),
            res[1].mean_latency_us() / 1000.0,
            anomalies.load(Ordering::Relaxed),
        );
    }
    println!("\nThe paper's point: with multiversioning, snapshot readers keep");
    println!("writer concurrency AND exactness — no stable-aggregate tax.");
}
